package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/metrics"
)

// statsWindow is the sliding-window size for quantile estimation.
const statsWindow = 4096

// collector aggregates runtime counters. Counters are atomics and the
// latency recorders lock internally, so the hot path never shares a mutex.
type collector struct {
	start time.Time

	requests   atomic.Uint64
	batches    atomic.Uint64
	batchedReq atomic.Uint64
	rows       atomic.Uint64
	localExits atomic.Uint64
	offloads   atomic.Uint64

	placeMu     sync.Mutex
	byPlacement map[string]uint64

	latency *metrics.LatencyRecorder // end-to-end, recorded by the runtime
	queue   *metrics.LatencyRecorder // time waiting for a batch to form
	exec    *metrics.LatencyRecorder // compute inside the executor
}

func newCollector() *collector {
	return &collector{
		start:       time.Now(),
		byPlacement: make(map[string]uint64),
		latency:     metrics.NewLatencyRecorder(statsWindow),
		queue:       metrics.NewLatencyRecorder(statsWindow),
		exec:        metrics.NewLatencyRecorder(statsWindow),
	}
}

func (c *collector) recordBatch(size int) {
	c.batches.Add(1)
	c.batchedReq.Add(uint64(size))
}

func (c *collector) recordResult(r Result) {
	c.queue.Record(r.QueueMs)
	c.exec.Record(r.ExecMs)
	c.rows.Add(1)
	// Local and offload are independent facts: a row answered by the early
	// exit never pays traffic, but a row can also stay on-device without an
	// exit (plain local placement, offline cascade fallback).
	if r.Local {
		c.localExits.Add(1)
	}
	if r.SimNetMs > 0 {
		c.offloads.Add(1)
	}
	c.placeMu.Lock()
	c.byPlacement[r.Placement.String()]++
	c.placeMu.Unlock()
}

func (c *collector) recordRequest(totalMs float64) {
	c.requests.Add(1)
	c.latency.Record(totalMs)
}

// Stats is the JSON shape of the /v1/stats endpoint for one runtime.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Requests      uint64  `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// LatencyMs is end-to-end request latency (queue + exec + sim network).
	LatencyMs metrics.LatencySummary `json:"latency_ms"`
	// QueueMs is time spent waiting for a batch to fill or its budget to
	// expire.
	QueueMs metrics.LatencySummary `json:"queue_ms"`
	// ExecMs is compute time per batch.
	ExecMs metrics.LatencySummary `json:"exec_ms"`

	Batches uint64 `json:"batches"`
	// BatchOccupancy is the mean coalesced batch size.
	BatchOccupancy float64 `json:"batch_occupancy"`
	MaxBatch       int     `json:"max_batch"`

	// LocalExits counts rows answered by the on-device early exit;
	// Offloads counts rows that paid simulated device->cloud traffic.
	// Rows on neither count ran fully on-device without an exit (plain
	// local placement, offline cascade fallback).
	LocalExits uint64 `json:"local_exits"`
	Offloads   uint64 `json:"offloads"`
	// LocalExitFraction is local_exits over all served rows.
	LocalExitFraction float64 `json:"local_exit_fraction"`
	// Placements counts answered rows by execution strategy.
	Placements map[string]uint64 `json:"placements"`
}

func (c *collector) snapshot(maxBatch int) Stats {
	s := Stats{
		UptimeSeconds: time.Since(c.start).Seconds(),
		Requests:      c.requests.Load(),
		LatencyMs:     c.latency.Snapshot(),
		QueueMs:       c.queue.Snapshot(),
		ExecMs:        c.exec.Snapshot(),
		Batches:       c.batches.Load(),
		MaxBatch:      maxBatch,
		LocalExits:    c.localExits.Load(),
		Offloads:      c.offloads.Load(),
		Placements:    make(map[string]uint64, 3),
	}
	if s.UptimeSeconds > 0 {
		s.ThroughputRPS = float64(s.Requests) / s.UptimeSeconds
	}
	if s.Batches > 0 {
		s.BatchOccupancy = float64(c.batchedReq.Load()) / float64(s.Batches)
	}
	if rows := c.rows.Load(); rows > 0 {
		s.LocalExitFraction = float64(s.LocalExits) / float64(rows)
	}
	c.placeMu.Lock()
	for k, v := range c.byPlacement {
		s.Placements[k] = v
	}
	c.placeMu.Unlock()
	return s
}
