package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/metrics"
)

// statsWindow is the sliding-window size for quantile estimation.
const statsWindow = 4096

// rateWindowSecs is the sliding window (seconds) over which ThroughputRPS
// is computed, so the reported rate tracks current traffic instead of
// decaying toward zero after any idle period the way a lifetime average
// does.
const rateWindowSecs = 30

// rateSlot is one second's event count.
type rateSlot struct {
	sec atomic.Int64
	n   atomic.Uint64
}

// rateWindow is a lock-free ring of per-second counters. Slots are lazily
// reset when their second comes around again; the reset races an increment
// by at most a handful of events, an acceptable error for a throughput
// gauge that never touches a mutex on the hot path.
type rateWindow struct {
	slots [rateWindowSecs]rateSlot
}

func (rw *rateWindow) record(now time.Time) {
	sec := now.Unix()
	s := &rw.slots[int(sec%rateWindowSecs)]
	if old := s.sec.Load(); old != sec {
		if s.sec.CompareAndSwap(old, sec) {
			s.n.Store(0)
		}
	}
	s.n.Add(1)
}

// rate sums the events of the last rateWindowSecs seconds and divides by the
// window actually covered (bounded below by one second so a cold start does
// not report an inflated rate).
func (rw *rateWindow) rate(now time.Time, uptimeSeconds float64) float64 {
	sec := now.Unix()
	var total uint64
	for i := range rw.slots {
		s := &rw.slots[i]
		if age := sec - s.sec.Load(); age >= 0 && age < rateWindowSecs {
			total += s.n.Load()
		}
	}
	span := uptimeSeconds
	if span > rateWindowSecs {
		span = rateWindowSecs
	}
	if span < 1 {
		span = 1
	}
	return float64(total) / span
}

// collector aggregates runtime counters. Counters are atomics and the
// latency recorders lock internally, so the hot path never shares a mutex.
type collector struct {
	start time.Time

	requests   atomic.Uint64
	batches    atomic.Uint64
	batchedReq atomic.Uint64
	rows       atomic.Uint64
	localExits atomic.Uint64
	offloads   atomic.Uint64

	// shed counts requests refused at admission (ErrOverloaded); expired
	// counts admitted requests answered with their own context error
	// instead of a backend execution; errors counts rows that saw an
	// executor/backend failure.
	shed    atomic.Uint64
	expired atomic.Uint64
	errors  atomic.Uint64

	rate rateWindow

	placeMu     sync.Mutex
	byPlacement map[string]uint64

	latency *metrics.LatencyRecorder // end-to-end, recorded by the runtime
	queue   *metrics.LatencyRecorder // time waiting for a batch to form
	exec    *metrics.LatencyRecorder // compute inside the executor
}

func newCollector() *collector {
	return &collector{
		start:       time.Now(),
		byPlacement: make(map[string]uint64),
		latency:     metrics.NewLatencyRecorder(statsWindow),
		queue:       metrics.NewLatencyRecorder(statsWindow),
		exec:        metrics.NewLatencyRecorder(statsWindow),
	}
}

func (c *collector) recordBatch(size int) {
	c.batches.Add(1)
	c.batchedReq.Add(uint64(size))
}

func (c *collector) recordResult(r Result) {
	c.queue.Record(r.QueueMs)
	c.exec.Record(r.ExecMs)
	c.rows.Add(1)
	// Local and offload are independent facts: a row answered by the early
	// exit never pays traffic, but a row can also stay on-device without an
	// exit (plain local placement, offline cascade fallback).
	if r.Local {
		c.localExits.Add(1)
	}
	if r.SimNetMs > 0 {
		c.offloads.Add(1)
	}
	c.placeMu.Lock()
	c.byPlacement[r.Placement.String()]++
	c.placeMu.Unlock()
}

func (c *collector) recordRequest(totalMs float64) {
	c.requests.Add(1)
	c.rate.record(time.Now())
	c.latency.Record(totalMs)
}

// Stats is the JSON shape of the /v1/stats endpoint for one runtime.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_s"`
	Requests      uint64  `json:"requests"`
	// ThroughputRPS is requests/sec over the last rateWindowSecs seconds
	// (a sliding window: it reflects current traffic and returns to zero
	// when traffic stops, instead of a lifetime average that decays after
	// any idle period).
	ThroughputRPS float64 `json:"throughput_rps"`

	// Shed counts requests refused at admission (queue/inflight cap full,
	// answered ErrOverloaded / HTTP 429). Expired counts admitted requests
	// whose caller's deadline passed before execution — answered with the
	// context error and never run. Errors counts rows that saw an
	// executor/backend failure.
	Shed    uint64 `json:"shed"`
	Expired uint64 `json:"expired"`
	Errors  uint64 `json:"errors"`
	// Inflight is the current number of admitted-but-unanswered requests;
	// QueueDepth is how many of those sit in the admission queue.
	Inflight   int64 `json:"inflight"`
	QueueDepth int   `json:"queue_depth"`

	// LatencyMs is end-to-end request latency (queue + exec + sim network).
	LatencyMs metrics.LatencySummary `json:"latency_ms"`
	// QueueMs is time spent waiting for a batch to fill or its budget to
	// expire.
	QueueMs metrics.LatencySummary `json:"queue_ms"`
	// ExecMs is compute time per batch.
	ExecMs metrics.LatencySummary `json:"exec_ms"`

	Batches uint64 `json:"batches"`
	// BatchOccupancy is the mean coalesced batch size.
	BatchOccupancy float64 `json:"batch_occupancy"`
	MaxBatch       int     `json:"max_batch"`

	// LocalExits counts rows answered by the on-device early exit;
	// Offloads counts rows that paid simulated device->cloud traffic.
	// Rows on neither count ran fully on-device without an exit (plain
	// local placement, offline cascade fallback).
	LocalExits uint64 `json:"local_exits"`
	Offloads   uint64 `json:"offloads"`
	// LocalExitFraction is local_exits over all served rows.
	LocalExitFraction float64 `json:"local_exit_fraction"`
	// Placements counts answered rows by execution strategy.
	Placements map[string]uint64 `json:"placements"`
}

func (c *collector) snapshot(maxBatch int, inflight int64, queueDepth int) Stats {
	now := time.Now()
	s := Stats{
		UptimeSeconds: now.Sub(c.start).Seconds(),
		Requests:      c.requests.Load(),
		Shed:          c.shed.Load(),
		Expired:       c.expired.Load(),
		Errors:        c.errors.Load(),
		Inflight:      inflight,
		QueueDepth:    queueDepth,
		LatencyMs:     c.latency.Snapshot(),
		QueueMs:       c.queue.Snapshot(),
		ExecMs:        c.exec.Snapshot(),
		Batches:       c.batches.Load(),
		MaxBatch:      maxBatch,
		LocalExits:    c.localExits.Load(),
		Offloads:      c.offloads.Load(),
		Placements:    make(map[string]uint64, 3),
	}
	s.ThroughputRPS = c.rate.rate(now, s.UptimeSeconds)
	if s.Batches > 0 {
		s.BatchOccupancy = float64(c.batchedReq.Load()) / float64(s.Batches)
	}
	if rows := c.rows.Load(); rows > 0 {
		s.LocalExitFraction = float64(s.LocalExits) / float64(rows)
	}
	c.placeMu.Lock()
	for k, v := range c.byPlacement {
		s.Placements[k] = v
	}
	c.placeMu.Unlock()
	return s
}

// writeProm renders the collector as Prometheus series, labeled by model —
// the per-runtime slice of the /metrics payload.
func (c *collector) writeProm(w *metrics.PromWriter, model string, maxBatch int, inflight int64, queueDepth int) {
	s := c.snapshot(maxBatch, inflight, queueDepth)
	ml := metrics.Label{Name: "model", Value: model}
	w.Counter("mobiledl_requests_total", "Requests answered successfully.", float64(s.Requests), ml)
	w.Counter("mobiledl_requests_shed_total", "Requests refused at admission (queue or inflight cap full).", float64(s.Shed), ml)
	w.Counter("mobiledl_requests_expired_total", "Admitted requests whose deadline passed before execution.", float64(s.Expired), ml)
	w.Counter("mobiledl_request_errors_total", "Rows that saw an executor or backend failure.", float64(s.Errors), ml)
	w.Counter("mobiledl_batches_total", "Coalesced batches executed.", float64(s.Batches), ml)
	w.Counter("mobiledl_batch_rows_total", "Rows executed across all batches.", float64(c.batchedReq.Load()), ml)
	w.Counter("mobiledl_local_exits_total", "Rows answered by the on-device early exit.", float64(s.LocalExits), ml)
	w.Counter("mobiledl_offloads_total", "Rows that paid simulated device-to-cloud traffic.", float64(s.Offloads), ml)
	w.Gauge("mobiledl_inflight_requests", "Admitted-but-unanswered requests.", float64(s.Inflight), ml)
	w.Gauge("mobiledl_queue_depth", "Requests waiting in the admission queue.", float64(s.QueueDepth), ml)
	w.Gauge("mobiledl_batch_occupancy_rows", "Mean coalesced batch size.", s.BatchOccupancy, ml)
	w.Gauge("mobiledl_throughput_rps", "Requests/sec over the sliding rate window.", s.ThroughputRPS, ml)
	w.Histogram("mobiledl_request_latency_ms", "End-to-end request latency (ms).", c.latency.Histogram(), ml)
	w.Histogram("mobiledl_queue_latency_ms", "Time waiting for a batch to form (ms).", c.queue.Histogram(), ml)
	w.Histogram("mobiledl_exec_latency_ms", "Backend compute time per batch (ms).", c.exec.Histogram(), ml)
	w.WriteSortedLabels("mobiledl_placement_rows_total", "Rows answered, by execution placement.", "counter", "placement", s.Placements, ml)
}
