package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobiledl/internal/tensor"
	"mobiledl/internal/trace"
)

// traceSpanNames collects the set of span names in a retained trace.
func traceSpanNames(td *trace.TraceData) map[string]int {
	names := make(map[string]int)
	for _, sp := range td.Spans {
		names[sp.Name]++
	}
	return names
}

func findSpan(td *trace.TraceData, name string) (trace.SpanData, bool) {
	for _, sp := range td.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return trace.SpanData{}, false
}

// TestTraceIntegrityConcurrentMixedOptions drives 64 concurrent traced
// requests with execution-relevant option differences (TopK 0 vs 2), so the
// batcher splits coalesced flushes into sub-batches — and every request's
// trace must still come out whole: its own queue/batch/exec spans, with the
// batch_size attribute matching the sub-batch the row actually rode. Run
// under -race this is also the proof that span materialization never races
// the batcher's workers.
func TestTraceIntegrityConcurrentMixedOptions(t *testing.T) {
	tracer := trace.New(trace.Config{Sample: 1, Recent: 128})
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 1)); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "mlp",
		Batch:  BatcherConfig{MaxBatch: 16, MaxDelay: time.Millisecond},
		Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const clients = 64
	ids := make([]string, clients)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Half the clients ask for top-2 probabilities: options differ in
			// an execution-relevant way, so flushes split into sub-batches.
			opts := RequestOptions{}
			if c%2 == 1 {
				opts.TopK = 2
			}
			sp := tracer.Start("test.req")
			ids[c] = sp.TraceID()
			ctx := trace.WithSpan(context.Background(), sp)
			res, err := rt.PredictWith(ctx, make([]float64, 8), opts)
			sp.End()
			if err != nil {
				errCh <- err
				return
			}
			if res.BatchSize < 1 {
				errCh <- fmt.Errorf("client %d: batch size %d", c, res.BatchSize)
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	for c, id := range ids {
		td := tracer.Get(id)
		if td == nil {
			t.Fatalf("client %d: trace %s not retained", c, id)
		}
		names := traceSpanNames(td)
		for _, want := range []string{"test.req", "queue", "batch", "exec"} {
			if names[want] != 1 {
				t.Fatalf("client %d trace has %d %q spans (spans: %v)", c, names[want], want, names)
			}
		}
		batch, _ := findSpan(td, "batch")
		exec, _ := findSpan(td, "exec")
		if exec.Parent != batch.ID {
			t.Fatalf("client %d: exec parented to %d, want batch %d", c, exec.Parent, batch.ID)
		}
		if batch.Attrs["batch_size"].(float64) < 1 {
			t.Fatalf("client %d: batch span attrs %v", c, batch.Attrs)
		}
	}
}

// TestServerTraceparentRoundTrip sends a predict request carrying a sampled
// W3C traceparent and verifies the server joins the caller's trace: the
// response echoes a traceparent with the same trace id, and the retained
// trace records the remote parent and the full span tree.
func TestServerTraceparentRoundTrip(t *testing.T) {
	tracer := trace.New(trace.Config{Sample: -1}) // join-only: no head sampling
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 1)); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(reg, ServerConfig{Tracer: tracer})
	defer srv.Close()
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "mlp",
		Batch: BatcherConfig{MaxBatch: 4, MaxDelay: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Add(rt)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	const caller = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	body, _ := json.Marshal(PredictRequest{Model: "mlp", Features: [][]float64{make([]float64, 8)}})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/predict", bytes.NewReader(body))
	req.Header.Set("traceparent", caller)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("predict: %d %s", resp.StatusCode, b)
	}
	echo := resp.Header.Get("traceparent")
	wantID := "4bf92f3577b34da6a3ce929d0e0e4736"
	if id, _, sampled, ok := trace.ParseTraceparent(echo); !ok || id.String() != wantID || !sampled {
		t.Fatalf("response traceparent %q does not continue trace %s", echo, wantID)
	}

	// An unsampled traceparent must not trace.
	req2, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/predict", bytes.NewReader(body))
	req2.Header.Set("traceparent", caller[:53]+"00")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("traceparent"); got != "" {
		t.Fatalf("unsampled request was traced: %q", got)
	}

	// The joined trace is queryable by the caller's id, names its remote
	// parent, and holds the whole request tree.
	tr, err := http.Get(hs.URL + "/v1/trace/" + wantID)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace/%s: %d", wantID, tr.StatusCode)
	}
	var td trace.TraceData
	if err := json.NewDecoder(tr.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	if td.RemoteParent != "00f067aa0ba902b7" {
		t.Fatalf("RemoteParent = %q, want caller's span id", td.RemoteParent)
	}
	names := traceSpanNames(&td)
	for _, want := range []string{"http.predict", "row", "queue", "batch", "exec"} {
		if names[want] == 0 {
			t.Fatalf("joined trace missing %q span: %v", want, names)
		}
	}
}

// TestCascadeTraceSpanTree is the acceptance check for the span hierarchy: a
// traced cascade predict whose rows offload must retain a trace with queue,
// batch, exec, device-half, and cloud-half spans, all with non-zero
// durations, plus the early-exit decision and simulated uplink.
func TestCascadeTraceSpanTree(t *testing.T) {
	ee, err := newCascade(5)
	if err != nil {
		t.Fatal(err)
	}
	ee.Threshold = 1.01 // never confident: every row takes the cloud path
	cb, err := NewCascadeBackend(ee)
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Config{Sample: 1})
	reg := NewRegistry()
	if _, err := reg.Install("cascade", cb); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(reg, ServerConfig{Tracer: tracer})
	defer srv.Close()
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "cascade",
		Batch: BatcherConfig{MaxBatch: 4, MaxDelay: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Add(rt)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body, _ := json.Marshal(PredictRequest{
		Model:    "cascade",
		Features: [][]float64{make([]float64, 8), make([]float64, 8)},
	})
	resp, err := http.Post(hs.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("predict: %d %s", resp.StatusCode, b)
	}
	id, _, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("no traceparent on response (header %q)", resp.Header.Get("traceparent"))
	}

	tres, err := http.Get(hs.URL + "/v1/trace/" + id.String())
	if err != nil {
		t.Fatal(err)
	}
	defer tres.Body.Close()
	var td trace.TraceData
	if err := json.NewDecoder(tres.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	names := traceSpanNames(&td)
	for _, want := range []string{
		"http.predict", "queue", "batch", "exec",
		"cascade.device", "cascade.exit", "cascade.perturb", "cascade.uplink", "cascade.cloud",
	} {
		if names[want] == 0 {
			t.Fatalf("cascade trace missing %q span (have %v)", want, names)
		}
	}
	for _, name := range []string{"queue", "batch", "exec", "cascade.device", "cascade.cloud"} {
		sp, _ := findSpan(&td, name)
		if sp.DurationMs <= 0 {
			t.Errorf("span %q has zero duration", name)
		}
	}
	// The early-exit decision carries its offload accounting.
	exit, _ := findSpan(&td, "cascade.exit")
	if exit.Attrs["offloads"].(float64) < 1 {
		t.Fatalf("exit span attrs %v: expected offloads >= 1 at threshold 1.01", exit.Attrs)
	}
	// Structure: device half is a child of exec, which is a child of batch.
	exec, _ := findSpan(&td, "exec")
	dev, _ := findSpan(&td, "cascade.device")
	if dev.Parent != exec.ID {
		t.Fatalf("cascade.device parented to %d, want exec %d", dev.Parent, exec.ID)
	}
}

// TestHealthzDraining verifies the readiness flip: 200 while serving, 503
// with a JSON body once draining starts, and /v1/trace stays queryable.
func TestHealthzDraining(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 1)); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(reg, ServerConfig{})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	check := func(wantStatus int, wantBody string) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("healthz status %d, want %d", resp.StatusCode, wantStatus)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("healthz body not JSON: %v", err)
		}
		if body["status"] != wantBody {
			t.Fatalf("healthz status field %q, want %q", body["status"], wantBody)
		}
	}
	check(http.StatusOK, "ok")
	if srv.Draining() {
		t.Fatal("fresh server reports draining")
	}
	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("StartDrain did not mark draining")
	}
	check(http.StatusServiceUnavailable, "draining")
	// Idempotent.
	srv.StartDrain()
	check(http.StatusServiceUnavailable, "draining")
}

// TestBuildInfoAndTraceMetrics verifies /metrics exports the build identity
// gauge and, with a tracer attached, the trace lifecycle counters.
func TestBuildInfoAndTraceMetrics(t *testing.T) {
	tracer := trace.New(trace.Config{Sample: 1})
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 1)); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(reg, ServerConfig{Tracer: tracer})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	sp := tracer.Start("warm")
	sp.End()

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	if !strings.Contains(text, `mobiledl_build_info{`) ||
		!strings.Contains(text, `version="dev"`) ||
		!strings.Contains(text, `goversion="go`) {
		t.Fatalf("/metrics missing build info gauge:\n%s", text)
	}
	if !strings.Contains(text, "mobiledl_traces_started_total 1") ||
		!strings.Contains(text, "mobiledl_traces_finished_total 1") {
		t.Fatalf("/metrics missing trace counters:\n%s", text)
	}
}

// TestTraceEndpointWithoutTracer verifies the trace API 404s cleanly when
// tracing is disabled.
func TestTraceEndpointWithoutTracer(t *testing.T) {
	reg := NewRegistry()
	srv := NewServerWith(reg, ServerConfig{})
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/v1/trace/recent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint with no tracer: %d, want 404", resp.StatusCode)
	}
}

// TestBatchErrorLoggedRateLimited drives repeated backend failures through
// the batcher and verifies exactly one structured error line lands within
// the rate-limit window — carrying the model, batch size, and the trace ids
// of the traced rows — instead of the failures vanishing into per-row
// errors (or one line per batch flooding the log).
func TestBatchErrorLoggedRateLimited(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	handler := slog.NewTextHandler(lockedWriter{&mu, &buf}, &slog.HandlerOptions{Level: slog.LevelError})
	boom := errors.New("backend exploded")
	exec := func(context.Context, *tensor.Matrix, RequestOptions) ([]Result, error) {
		return nil, boom
	}
	b, err := NewBatcher(4, BatcherConfig{MaxBatch: 4, MaxDelay: 100 * time.Microsecond}, exec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.logger = slog.New(handler)
	b.model = "mlp"

	tracer := trace.New(trace.Config{Sample: 1})
	for i := 0; i < 5; i++ {
		sp := tracer.Start("req")
		ctx := trace.WithSpan(context.Background(), sp)
		if _, err := b.Submit(ctx, make([]float64, 4), RequestOptions{}); !errors.Is(err, boom) {
			t.Fatalf("submit %d: err = %v, want the backend error", i, err)
		}
		sp.EndErr(err)
	}

	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if n := strings.Count(logged, "batch execution failed"); n != 1 {
		t.Fatalf("5 failing batches inside the rate window logged %d lines, want 1:\n%s", n, logged)
	}
	if !strings.Contains(logged, "model=mlp") || !strings.Contains(logged, "batch_size=") {
		t.Fatalf("error line missing context:\n%s", logged)
	}
	if !strings.Contains(logged, "trace_ids=") || strings.Contains(logged, "trace_ids=[]") {
		t.Fatalf("error line missing trace correlation:\n%s", logged)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
