package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/metrics"
	"mobiledl/internal/trace"
	"mobiledl/internal/version"
)

// ServerConfig tunes HTTP-level serving policy: the per-request compute
// budget and the overload response.
type ServerConfig struct {
	// DefaultTimeout is the deadline budget applied to every /v1/predict
	// request that does not carry its own timeout_ms (0 = no server-side
	// deadline). The derived context rides each row through the batcher, so
	// a request that outlives its budget is answered 504 and pruned before
	// it costs a backend execution.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeout_ms (default 30s) so a
	// client cannot pin a batch slot indefinitely.
	MaxTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// Tracer, when set, traces predict requests: inbound W3C traceparent
	// headers with the sampled flag always trace (joined to the caller's
	// trace id), other requests are head-sampled at the tracer's rate.
	// Finished traces are queryable at /v1/trace/recent and /v1/trace/{id}.
	// Nil disables tracing at near-zero cost.
	Tracer *trace.Tracer
	// Logger receives structured request logs; nil means slog.Default().
	Logger *slog.Logger
	// ClusterStatus, when set, reports this node's cluster membership state
	// ("solo", "joining", "ok", or "partitioned") on /healthz — the seam the
	// cluster layer exports health through without this package importing
	// it. Nil omits the field (single-process deployment).
	ClusterStatus func() string
}

func (c *ServerConfig) fill() {
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Server exposes one or more runtimes over HTTP/JSON:
//
//	POST /v1/predict  {"model":"m","features":[[...],...],"options":{...}}
//	GET  /v1/stats                                          -> per-model Stats
//	GET  /v1/models                                         -> registry listing
//	GET  /metrics                                           -> Prometheus text
//	GET  /healthz                                           -> readiness + store health
//	GET  /v1/backup                                         -> online store snapshot
//
// Rows of one predict call are submitted to the batcher individually, so
// concurrent clients coalesce into shared tensor batches. The optional
// "options" object carries per-request knobs: "top_k" (class-probability
// breakdown), "version" (registry version pin), "no_perturb" (skip the
// cascade privacy perturbation); the optional "timeout_ms" field sets the
// request's deadline budget. Overload is shed with 429 + Retry-After, an
// exhausted deadline is 504, and a closed runtime is 503.
type Server struct {
	registry *Registry
	cfg      ServerConfig
	logger   *slog.Logger

	// draining flips once at shutdown: /healthz turns 503 so load balancers
	// stop routing here while in-flight batches finish.
	draining atomic.Bool

	mu       sync.RWMutex
	runtimes map[string]*Runtime
	sources  []func(*metrics.PromWriter)
}

// NewServer wraps a registry with default policy; runtimes are attached per
// served model.
func NewServer(reg *Registry) *Server {
	return NewServerWith(reg, ServerConfig{})
}

// NewServerWith wraps a registry under an explicit serving policy.
func NewServerWith(reg *Registry, cfg ServerConfig) *Server {
	cfg.fill()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{registry: reg, cfg: cfg, logger: logger, runtimes: make(map[string]*Runtime)}
}

// AddMetricsSource registers an extra producer for the /metrics payload —
// the seam subsystems outside the serving package (e.g. the fedserve
// training coordinator) export through without this package importing them.
func (s *Server) AddMetricsSource(src func(*metrics.PromWriter)) {
	s.mu.Lock()
	s.sources = append(s.sources, src)
	s.mu.Unlock()
}

// Add attaches a runtime under its model name.
func (s *Server) Add(rt *Runtime) {
	s.mu.Lock()
	s.runtimes[rt.Name()] = rt
	s.mu.Unlock()
}

// StartDrain flips the server into draining: /healthz answers 503 so load
// balancers and orchestrators stop routing new traffic here, while requests
// already in flight keep being served. Call it on SIGTERM, wait out the
// traffic tail, then Close.
func (s *Server) StartDrain() {
	if !s.draining.Swap(true) {
		s.logger.Info("server draining", "reason", "StartDrain")
	}
}

// Draining reports whether StartDrain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close marks the server draining, closes every attached runtime (draining
// their in-flight batches), then releases the registry's retained backends
// via Registry.Close — the shutdown path for resource-holding Backend
// implementations.
func (s *Server) Close() {
	s.StartDrain()
	s.mu.RLock()
	for _, rt := range s.runtimes {
		rt.Close()
	}
	s.mu.RUnlock()
	_ = s.registry.Close()
}

func (s *Server) runtime(name string) (*Runtime, bool) {
	s.mu.RLock()
	rt, ok := s.runtimes[name]
	s.mu.RUnlock()
	return rt, ok
}

// Handler returns the HTTP mux for the serving API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/v1/backup", s.handleBackup)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleHealthz is the readiness probe: 200 {"status":"ok"} while serving,
// 503 {"status":"draining"} once StartDrain/Close has run, so orchestrators
// pull the instance out of rotation before in-flight work is cut off. The
// "store" field distinguishes degraded persistence ("degraded": publishes
// are RAM-only until the disk recovers) from healthy serving — a degraded
// store alone never turns readiness off.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]string{"status": "ok", "store": s.registry.StoreStatus()}
	if s.cfg.ClusterStatus != nil {
		body["cluster"] = s.cfg.ClusterStatus()
	}
	if s.draining.Load() {
		body["status"] = "draining"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(body)
		return
	}
	writeJSON(w, body)
}

// handleBackup streams an online snapshot of the model store — a valid
// snapshot file a fresh data dir can boot from (see the README restore
// runbook). 404 when no store is configured. Backups stay available while
// draining: shutdown is exactly when an operator wants one.
func (s *Server) handleBackup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	st := s.registry.Store()
	if st == nil {
		httpError(w, http.StatusNotFound, errors.New("no model store configured (run with -data-dir)"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="mobiledl-snapshot.bin"`)
	n, err := st.Backup(w)
	if err != nil {
		// Headers (and possibly bytes) are gone; log instead of a half 500.
		s.logger.Error("backup stream failed", "bytes", n, "err", err)
	}
}

// PredictRequest is the /v1/predict body.
type PredictRequest struct {
	Model    string      `json:"model"`
	Features [][]float64 `json:"features"`
	// Options applies to every row of the request.
	Options RequestOptions `json:"options"`
	// TimeoutMs overrides the server's default deadline budget for this
	// request (capped by ServerConfig.MaxTimeout; 0 inherits the default).
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// RowResult is one row's answer in a PredictResponse: the prediction plus
// the serving breakdown — where the row ran, which registry version answered
// it, and how its latency decomposes into queueing, compute, and simulated
// transfer. The model version is per row: during a hot swap, rows of one
// request can legitimately be served by different versions.
type RowResult struct {
	Class        int         `json:"class"`
	Probs        []ClassProb `json:"probs,omitempty"`
	Local        bool        `json:"local"`
	Placement    string      `json:"placement"`
	ModelVersion int         `json:"model_version"`
	BatchSize    int         `json:"batch_size"`
	QueueMs      float64     `json:"queue_ms"`
	ExecMs       float64     `json:"exec_ms"`
	SimNetMs     float64     `json:"sim_net_ms"`
}

// PredictResponse is the /v1/predict reply.
type PredictResponse struct {
	Model string      `json:"model"`
	Rows  []RowResult `json:"rows"`
}

// maxRowsPerRequest bounds the per-request fan-out (one goroutine per row).
const maxRowsPerRequest = 1024

// maxBodyBytes bounds the /v1/predict body (1024 rows of wide float64
// features fit comfortably; anything bigger is a client error, not an
// allocation).
const maxBodyBytes = 8 << 20

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// Covers malformed JSON and bodies over maxBodyBytes alike: both are
		// client faults, never a 500.
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Features) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("no feature rows"))
		return
	}
	if len(req.Features) > maxRowsPerRequest {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%d feature rows exceeds the per-request limit of %d", len(req.Features), maxRowsPerRequest))
		return
	}
	if req.TimeoutMs < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("negative timeout_ms %d", req.TimeoutMs))
		return
	}
	rt, ok := s.runtime(req.Model)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("model %q not served", req.Model))
		return
	}

	// Trace the request: an inbound traceparent with the sampled flag joins
	// the caller's trace; otherwise the tracer head-samples. The root span id
	// is echoed back in the response's traceparent header so clients can
	// fetch the span tree from /v1/trace/{id}.
	sp := s.rootSpan(r, req.Model, len(req.Features))
	if sp.Active() {
		w.Header().Set("traceparent", sp.Traceparent())
	}

	// Derive the request deadline: the client's timeout_ms if sent (capped),
	// else the server's default budget. The context rides every row through
	// the batcher, so an expired request is pruned instead of executed.
	ctx := r.Context()
	budget := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		// MaxTimeout caps only the client's ask; the operator-configured
		// default is taken at face value.
		budget = time.Duration(req.TimeoutMs) * time.Millisecond
		if budget > s.cfg.MaxTimeout {
			budget = s.cfg.MaxTimeout
		}
	}
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	// Fan the rows out so they coalesce with other clients' requests. Under a
	// trace, each row goroutine gets its own child span (span allocation in
	// the shared slab is atomic; every goroutine writes only spans it
	// created) so sub-batch splits stay attributable per row.
	results := make([]Result, len(req.Features))
	errs := make([]error, len(req.Features))
	var wg sync.WaitGroup
	for i, row := range req.Features {
		wg.Add(1)
		go func(i int, row []float64) {
			defer wg.Done()
			rctx := ctx
			if sp.Active() {
				rsp := sp.Child("row", trace.Num("row", float64(i)))
				defer func() { rsp.EndErr(errs[i]) }()
				rctx = trace.WithSpan(ctx, rsp)
			}
			results[i], errs[i] = rt.PredictWith(rctx, row, req.Options)
		}(i, row)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrRequest):
				status = http.StatusBadRequest
			case errors.Is(err, ErrOverloaded):
				w.Header().Set("Retry-After",
					strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
				status = http.StatusTooManyRequests
			case errors.Is(err, ErrClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				// The request's deadline budget ran out (or the client went
				// away) before the model answered; the row was pruned, not
				// computed.
				status = http.StatusGatewayTimeout
			}
			sp.EndErr(err)
			if status >= http.StatusInternalServerError || status == http.StatusGatewayTimeout {
				s.logger.Error("predict failed",
					"model", req.Model, "rows", len(req.Features),
					"status", status, "trace_id", sp.TraceID(), "err", err)
			}
			httpError(w, status, err)
			return
		}
	}
	sp.End()

	resp := PredictResponse{Model: req.Model, Rows: make([]RowResult, len(results))}
	for i, res := range results {
		resp.Rows[i] = RowResult{
			Class:        res.Class,
			Probs:        res.Probs,
			Local:        res.Local,
			Placement:    res.Placement.String(),
			ModelVersion: res.ModelVersion,
			BatchSize:    res.BatchSize,
			QueueMs:      res.QueueMs,
			ExecMs:       res.ExecMs,
			SimNetMs:     res.SimNetMs,
		}
	}
	writeJSON(w, resp)
}

// rootSpan decides tracing for one predict request. An inbound sampled
// traceparent always traces (joined to the caller's trace id, so the span
// tree names the remote parent); without one the tracer head-samples.
// Returns the zero Span (inactive, near-free) when the request is not
// traced.
func (s *Server) rootSpan(r *http.Request, model string, rows int) trace.Span {
	t := s.cfg.Tracer
	if t == nil {
		return trace.Span{}
	}
	if id, parent, sampled, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		if !sampled {
			return trace.Span{}
		}
		return t.StartRemote("http.predict", id, parent,
			trace.Str("model", model), trace.Num("rows", float64(rows)))
	}
	if !t.Sample() {
		return trace.Span{}
	}
	return t.Start("http.predict",
		trace.Str("model", model), trace.Num("rows", float64(rows)))
}

// handleTrace serves the in-process trace store:
//
//	GET /v1/trace/recent -> retained trace summaries, newest first
//	GET /v1/trace/{id}   -> one trace's full span tree
//
// Retention is tail-based (errors and the slowest traces are kept
// preferentially), so a trace that was sampled may still age out.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	t := s.cfg.Tracer
	if t == nil {
		httpError(w, http.StatusNotFound, errors.New("tracing disabled (no tracer configured)"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if id == "" || id == "recent" {
		writeJSON(w, t.Recent())
		return
	}
	td := t.Get(id)
	if td == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("trace %q not retained", id))
		return
	}
	writeJSON(w, td)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.mu.RLock()
	out := make(map[string]Stats, len(s.runtimes))
	for name, rt := range s.runtimes {
		out[name] = rt.Stats()
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, s.registry.Snapshot())
}

// handleMetrics renders the Prometheus text exposition: every runtime's
// counters/gauges/histograms plus any registered extra sources (e.g. the
// fedserve training coordinator). Rendering goes through a buffer so a
// mid-render error can still become a clean 500.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	var buf bytes.Buffer
	pw := metrics.NewPromWriter(&buf)
	s.mu.RLock()
	names := make([]string, 0, len(s.runtimes))
	for name := range s.runtimes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.runtimes[name].WriteMetrics(pw)
	}
	sources := append([]func(*metrics.PromWriter){}, s.sources...)
	s.mu.RUnlock()
	for _, src := range sources {
		src(pw)
	}
	pw.Gauge("mobiledl_build_info",
		"Build identity: constant 1, with the stamped version and Go toolchain in labels.", 1,
		metrics.Label{Name: "version", Value: version.Version},
		metrics.Label{Name: "goversion", Value: runtime.Version()})
	if t := s.cfg.Tracer; t != nil {
		ts := t.Stats()
		pw.Counter("mobiledl_traces_started_total", "Traces started (head-sampled or joined via traceparent).", float64(ts.Started))
		pw.Counter("mobiledl_traces_finished_total", "Traces finished and offered to the retention store.", float64(ts.Finished))
	}
	if s.registry.Store() != nil {
		pw.Counter("mobiledl_store_errors_total",
			"Failed model-store appends; the publish stayed in RAM and serving continued.",
			float64(s.registry.StoreErrors()))
		degraded := 0.0
		if s.registry.StoreStatus() == StoreDegraded {
			degraded = 1
		}
		pw.Gauge("mobiledl_store_degraded",
			"1 while the model store's last append failed (publishes are RAM-only), 0 when healthy.",
			degraded)
	}
	if err := pw.Flush(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = buf.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
