package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// Server exposes one or more runtimes over HTTP/JSON:
//
//	POST /v1/predict  {"model":"m","features":[[...],...],"options":{...}}
//	GET  /v1/stats                                          -> per-model Stats
//	GET  /v1/models                                         -> registry listing
//	GET  /healthz                                           -> "ok"
//
// Rows of one predict call are submitted to the batcher individually, so
// concurrent clients coalesce into shared tensor batches. The optional
// "options" object carries per-request knobs: "top_k" (class-probability
// breakdown), "version" (registry version pin), "no_perturb" (skip the
// cascade privacy perturbation).
type Server struct {
	registry *Registry

	mu       sync.RWMutex
	runtimes map[string]*Runtime
}

// NewServer wraps a registry; runtimes are attached per served model.
func NewServer(reg *Registry) *Server {
	return &Server{registry: reg, runtimes: make(map[string]*Runtime)}
}

// Add attaches a runtime under its model name.
func (s *Server) Add(rt *Runtime) {
	s.mu.Lock()
	s.runtimes[rt.Name()] = rt
	s.mu.Unlock()
}

// Close closes every attached runtime (draining their in-flight batches),
// then releases the registry's retained backends via Registry.Close — the
// shutdown path for resource-holding Backend implementations.
func (s *Server) Close() {
	s.mu.RLock()
	for _, rt := range s.runtimes {
		rt.Close()
	}
	s.mu.RUnlock()
	_ = s.registry.Close()
}

func (s *Server) runtime(name string) (*Runtime, bool) {
	s.mu.RLock()
	rt, ok := s.runtimes[name]
	s.mu.RUnlock()
	return rt, ok
}

// Handler returns the HTTP mux for the serving API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// PredictRequest is the /v1/predict body.
type PredictRequest struct {
	Model    string      `json:"model"`
	Features [][]float64 `json:"features"`
	// Options applies to every row of the request.
	Options RequestOptions `json:"options"`
}

// RowResult is one row's answer in a PredictResponse: the prediction plus
// the serving breakdown — where the row ran, which registry version answered
// it, and how its latency decomposes into queueing, compute, and simulated
// transfer. The model version is per row: during a hot swap, rows of one
// request can legitimately be served by different versions.
type RowResult struct {
	Class        int         `json:"class"`
	Probs        []ClassProb `json:"probs,omitempty"`
	Local        bool        `json:"local"`
	Placement    string      `json:"placement"`
	ModelVersion int         `json:"model_version"`
	BatchSize    int         `json:"batch_size"`
	QueueMs      float64     `json:"queue_ms"`
	ExecMs       float64     `json:"exec_ms"`
	SimNetMs     float64     `json:"sim_net_ms"`
}

// PredictResponse is the /v1/predict reply.
type PredictResponse struct {
	Model string      `json:"model"`
	Rows  []RowResult `json:"rows"`
}

// maxRowsPerRequest bounds the per-request fan-out (one goroutine per row).
const maxRowsPerRequest = 1024

// maxBodyBytes bounds the /v1/predict body (1024 rows of wide float64
// features fit comfortably; anything bigger is a client error, not an
// allocation).
const maxBodyBytes = 8 << 20

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// Covers malformed JSON and bodies over maxBodyBytes alike: both are
		// client faults, never a 500.
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Features) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("no feature rows"))
		return
	}
	if len(req.Features) > maxRowsPerRequest {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%d feature rows exceeds the per-request limit of %d", len(req.Features), maxRowsPerRequest))
		return
	}
	rt, ok := s.runtime(req.Model)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("model %q not served", req.Model))
		return
	}

	// Fan the rows out so they coalesce with other clients' requests.
	results := make([]Result, len(req.Features))
	errs := make([]error, len(req.Features))
	var wg sync.WaitGroup
	for i, row := range req.Features {
		wg.Add(1)
		go func(i int, row []float64) {
			defer wg.Done()
			results[i], errs[i] = rt.PredictWith(r.Context(), row, req.Options)
		}(i, row)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrRequest):
				status = http.StatusBadRequest
			case errors.Is(err, ErrClosed):
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, err)
			return
		}
	}

	resp := PredictResponse{Model: req.Model, Rows: make([]RowResult, len(results))}
	for i, res := range results {
		resp.Rows[i] = RowResult{
			Class:        res.Class,
			Probs:        res.Probs,
			Local:        res.Local,
			Placement:    res.Placement.String(),
			ModelVersion: res.ModelVersion,
			BatchSize:    res.BatchSize,
			QueueMs:      res.QueueMs,
			ExecMs:       res.ExecMs,
			SimNetMs:     res.SimNetMs,
		}
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	s.mu.RLock()
	out := make(map[string]Stats, len(s.runtimes))
	for name, rt := range s.runtimes {
		out[name] = rt.Stats()
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, s.registry.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
