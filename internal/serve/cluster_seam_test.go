package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRegistryInventory: Inventory snapshots name -> current version for the
// cluster's gossip (models without a loaded version are absent).
func TestRegistryInventory(t *testing.T) {
	reg := NewRegistry()
	if inv := reg.Inventory(); len(inv) != 0 {
		t.Fatalf("empty registry inventory = %v", inv)
	}
	if _, err := reg.Install("m1", mustDense(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("m2", mustDense(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("m2", mustDense(t, 3)); err != nil { // hot swap to v2
		t.Fatal(err)
	}
	inv := reg.Inventory()
	if len(inv) != 2 || inv["m1"] != 1 || inv["m2"] != 2 {
		t.Fatalf("inventory = %v, want m1:1 m2:2", inv)
	}
	// The snapshot is a copy: mutating it must not reach the registry.
	inv["m1"] = 99
	if got := reg.Inventory()["m1"]; got != 1 {
		t.Fatalf("inventory aliased registry state: m1 = %d", got)
	}
}

// TestHealthzClusterField: with a ClusterStatus hook wired, /healthz carries
// the cluster state; without it, the field is absent (solo deployments keep
// their old payload shape).
func TestHealthzClusterField(t *testing.T) {
	healthz := func(srv *Server) map[string]string {
		t.Helper()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	plain := NewServerWith(NewRegistry(), ServerConfig{})
	if body := healthz(plain); body["cluster"] != "" {
		t.Fatalf("healthz without cluster hook = %v, want no cluster field", body)
	}

	status := "joining"
	srv := NewServerWith(NewRegistry(), ServerConfig{
		ClusterStatus: func() string { return status },
	})
	if body := healthz(srv); body["cluster"] != "joining" {
		t.Fatalf("healthz cluster = %q, want joining", body["cluster"])
	}
	status = "ok"
	if body := healthz(srv); body["cluster"] != "ok" {
		t.Fatalf("healthz cluster = %q, want ok (hook consulted per request)", body["cluster"])
	}

	// Draining still reports the cluster field alongside the 503.
	srv.StartDrain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["cluster"] != "ok" {
		t.Fatalf("draining healthz cluster = %q, want ok", body["cluster"])
	}
}
