package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mobiledl/internal/tensor"
)

// BatcherConfig tunes the request-coalescing policy.
type BatcherConfig struct {
	// MaxBatch flushes a batch as soon as this many requests are pending
	// (default 32).
	MaxBatch int
	// MaxDelay is the latency budget: a partial batch flushes this long
	// after its first request arrived (default 2ms).
	MaxDelay time.Duration
	// Workers sizes the execution pool (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the submit channel; Submit blocks (or honors its
	// context) when full (default 4*MaxBatch).
	QueueCap int
}

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
}

// ExecFunc runs one coalesced tensor batch under uniform request options and
// returns one Result per row. The batch matrix is pooled: it is only valid
// for the duration of the call and must not be retained (or returned) by the
// executor.
type ExecFunc func(ctx context.Context, batch *tensor.Matrix, opts RequestOptions) ([]Result, error)

type request struct {
	features []float64
	opts     RequestOptions
	enqueued time.Time
	resp     chan response
}

type response struct {
	res Result
	err error
}

// Batcher coalesces single-row inference requests into tensor batches: a
// collector goroutine accumulates requests and flushes on max-batch-size or
// on the latency-budget timer, whichever fires first; flushed batches feed a
// worker pool that calls the ExecFunc. Requests with different
// execution-relevant options (version pin, no_perturb, top_k) are split into
// separate exec calls at flush time, so one ExecFunc invocation always sees
// uniform options. One Batcher serves one model runtime.
type Batcher struct {
	cfg  BatcherConfig
	dim  int
	exec ExecFunc

	in      chan *request
	batches chan []*request

	// ctx is the execution context handed to every ExecFunc call; cancel
	// fires in Close so backends that honor cancellation (e.g. ones calling
	// external processes) cannot hang shutdown. The shipped backends ignore
	// it, so queued requests still drain to completion on Close.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.RWMutex // guards closed vs in-flight Submit sends
	closed bool
	wg     sync.WaitGroup // collector + workers

	stats *collector
}

// NewBatcher starts the collector and worker pool. dim is the required
// feature width; exec runs each flushed batch. stats may be nil.
func NewBatcher(dim int, cfg BatcherConfig, exec ExecFunc, stats *collector) (*Batcher, error) {
	if dim <= 0 || exec == nil {
		return nil, fmt.Errorf("%w: batcher needs a positive dim and an exec func", ErrServe)
	}
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	b := &Batcher{
		cfg:     cfg,
		dim:     dim,
		exec:    exec,
		in:      make(chan *request, cfg.QueueCap),
		batches: make(chan []*request, cfg.Workers),
		ctx:     ctx,
		cancel:  cancel,
		stats:   stats,
	}
	b.wg.Add(1 + cfg.Workers)
	go b.collect()
	for i := 0; i < cfg.Workers; i++ {
		go b.worker()
	}
	return b, nil
}

// Submit enqueues one feature row with its request options and blocks until
// the result is ready, the context is done, or the batcher closes.
func (b *Batcher) Submit(ctx context.Context, features []float64, opts RequestOptions) (Result, error) {
	if len(features) != b.dim {
		return Result{}, fmt.Errorf("%w: got %d features, model expects %d", ErrRequest, len(features), b.dim)
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	r := &request{
		features: features,
		opts:     opts,
		enqueued: time.Now(),
		resp:     make(chan response, 1), // buffered: a worker send never blocks on an abandoned request
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case b.in <- r:
		b.mu.RUnlock()
	case <-ctx.Done():
		b.mu.RUnlock()
		return Result{}, ctx.Err()
	}
	select {
	case resp := <-r.resp:
		return resp.res, resp.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Close stops intake, cancels the execution context, drains pending
// requests, and waits for workers. Requests still queued are served by the
// shipped (cancellation-ignoring) backends; a backend that honors the
// context may instead abort them with its cancellation error, which is what
// keeps a hung external backend from wedging shutdown. Submit after Close
// returns ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.in)
	b.mu.Unlock()
	b.cancel()
	b.wg.Wait()
}

// collect is the single accumulator loop: it owns the pending slice and the
// latency-budget timer, so flush decisions need no locking.
func (b *Batcher) collect() {
	defer b.wg.Done()
	var pending []*request
	var timer *time.Timer
	var deadline <-chan time.Time

	flush := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			deadline = nil
		}
		if len(pending) == 0 {
			return
		}
		b.batches <- pending
		pending = nil
	}

	for {
		select {
		case r, ok := <-b.in:
			if !ok {
				flush()
				close(b.batches)
				return
			}
			pending = append(pending, r)
			if len(pending) == 1 {
				timer = time.NewTimer(b.cfg.MaxDelay)
				deadline = timer.C
			}
			if len(pending) >= b.cfg.MaxBatch {
				flush()
			}
		case <-deadline:
			timer = nil
			deadline = nil
			flush()
		}
	}
}

func (b *Batcher) worker() {
	defer b.wg.Done()
	for reqs := range b.batches {
		b.runBatch(reqs)
	}
}

// runBatch executes one flushed accumulation. The common case — every row
// carrying default (or identical) options — runs as a single tensor batch
// with no extra work; mixed options partition into per-options sub-batches
// so each ExecFunc call stays uniform.
func (b *Batcher) runBatch(reqs []*request) {
	uniform := true
	for _, r := range reqs[1:] {
		if r.opts != reqs[0].opts {
			uniform = false
			break
		}
	}
	if uniform {
		b.execGroup(reqs)
		return
	}
	// Partition preserving arrival order within each group. Options structs
	// are comparable, so they key the map directly.
	groups := make(map[RequestOptions][]*request)
	var order []RequestOptions
	for _, r := range reqs {
		if _, ok := groups[r.opts]; !ok {
			order = append(order, r.opts)
		}
		groups[r.opts] = append(groups[r.opts], r)
	}
	for _, opts := range order {
		b.execGroup(groups[opts])
	}
}

// execGroup assembles one uniform-options group into a pooled matrix, runs
// the ExecFunc, and fans results (or the error) back out to the submitters.
func (b *Batcher) execGroup(reqs []*request) {
	start := time.Now()
	// Assemble into a pooled matrix: each worker recycles the previous
	// batch's buffer instead of allocating one per flush.
	batch := tensor.Get(len(reqs), b.dim)
	for i, r := range reqs {
		copy(batch.Row(i), r.features)
	}
	results, err := b.exec(b.ctx, batch, reqs[0].opts)
	tensor.Put(batch)
	if err == nil && len(results) != len(reqs) {
		err = fmt.Errorf("%w: executor returned %d results for %d rows", ErrServe, len(results), len(reqs))
	}
	execMs := float64(time.Since(start).Microseconds()) / 1000
	if b.stats != nil {
		b.stats.recordBatch(len(reqs))
	}
	for i, r := range reqs {
		if err != nil {
			r.resp <- response{err: err}
			continue
		}
		res := results[i]
		res.BatchSize = len(reqs)
		res.QueueMs = float64(start.Sub(r.enqueued).Microseconds()) / 1000
		res.ExecMs = execMs
		if b.stats != nil {
			b.stats.recordResult(res)
		}
		r.resp <- response{res: res}
	}
}
