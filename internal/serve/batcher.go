package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/tensor"
	"mobiledl/internal/trace"
)

// BatcherConfig tunes the request-coalescing and admission policy.
type BatcherConfig struct {
	// MaxBatch flushes a batch as soon as this many requests are pending
	// (default 32).
	MaxBatch int
	// MaxDelay is the latency budget: a partial batch flushes this long
	// after its first request arrived (default 2ms).
	MaxDelay time.Duration
	// Workers sizes the execution pool (default GOMAXPROCS).
	Workers int
	// QueueCap bounds the submit channel. A full queue sheds: Submit fails
	// fast with ErrOverloaded instead of queueing work whose caller will
	// time out before it runs (default max(4*MaxBatch, 1024) — one
	// max-size HTTP fan-out fits without shedding).
	QueueCap int
	// MaxInflight caps admitted-but-unanswered requests (queued plus
	// executing); past it Submit fails fast with ErrOverloaded. Zero means
	// DefaultMaxInflight; negative disables the cap.
	MaxInflight int
}

// DefaultMaxInflight is the per-model admission cap applied when
// BatcherConfig.MaxInflight is zero.
const DefaultMaxInflight = 8192

func (c *BatcherConfig) fill() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
		if c.QueueCap < 1024 {
			c.QueueCap = 1024
		}
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = DefaultMaxInflight
	}
}

// ExecFunc runs one coalesced tensor batch under uniform request options and
// returns one Result per row. The batch matrix is pooled: it is only valid
// for the duration of the call and must not be retained (or returned) by the
// executor. The context is cancelled when the batcher closes or when every
// submitter in the batch has abandoned its request — a backend that honors
// it stops computing answers nobody will read.
type ExecFunc func(ctx context.Context, batch *tensor.Matrix, opts RequestOptions) ([]Result, error)

type request struct {
	// ctx is the submitter's context: consulted at flush and exec time so a
	// request whose caller already gave up is answered with its context
	// error instead of occupying a batch slot.
	ctx      context.Context
	features []float64
	opts     RequestOptions
	enqueued time.Time
	resp     chan response
	// span is the submitter's trace span (the zero Span when the request is
	// untraced). The batcher never writes spans itself — it only checks
	// Active() to decide whether the batch needs a trace.BatchLog; the
	// submitter materializes all span structure after the response arrives.
	span trace.Span
}

type response struct {
	res Result
	err error
}

// Batcher coalesces single-row inference requests into tensor batches: a
// collector goroutine accumulates requests and flushes on max-batch-size or
// on the latency-budget timer, whichever fires first; flushed batches feed a
// worker pool that calls the ExecFunc. Requests with different
// execution-relevant options (version pin, no_perturb, top_k) are split into
// separate exec calls at flush time, so one ExecFunc invocation always sees
// uniform options. Admission is bounded (QueueCap, MaxInflight) and
// deadline-aware: rows whose submitter context is already done are pruned
// before they cost a backend execution. One Batcher serves one model
// runtime.
type Batcher struct {
	cfg  BatcherConfig
	dim  int
	exec ExecFunc

	in      chan *request
	batches chan []*request

	// ctx is the execution context every per-batch context derives from;
	// cancel fires in Close so backends that honor cancellation (e.g. ones
	// calling external processes) cannot hang shutdown. The shipped
	// backends ignore it, so queued requests still drain to completion on
	// Close.
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.RWMutex // guards closed vs in-flight Submit sends
	closed bool
	wg     sync.WaitGroup // collector + workers

	// inflight counts admitted-but-unanswered requests, the unit the
	// MaxInflight admission cap meters.
	inflight atomic.Int64

	stats *collector

	// logger and model feed the batch-failure log line (set by the owning
	// Runtime; logger defaults to slog.Default()). lastErrLog rate-limits it
	// to one line per errLogInterval so a failing backend under load cannot
	// flood the log — the full failure count is always in Stats.Errors.
	logger     *slog.Logger
	model      string
	lastErrLog atomic.Int64
}

// errLogInterval is the minimum spacing between batch-failure log lines.
const errLogInterval = time.Second

// NewBatcher starts the collector and worker pool. dim is the required
// feature width; exec runs each flushed batch. stats may be nil.
func NewBatcher(dim int, cfg BatcherConfig, exec ExecFunc, stats *collector) (*Batcher, error) {
	if dim <= 0 || exec == nil {
		return nil, fmt.Errorf("%w: batcher needs a positive dim and an exec func", ErrServe)
	}
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	b := &Batcher{
		cfg:     cfg,
		dim:     dim,
		exec:    exec,
		in:      make(chan *request, cfg.QueueCap),
		batches: make(chan []*request, cfg.Workers),
		ctx:     ctx,
		cancel:  cancel,
		stats:   stats,
	}
	b.wg.Add(1 + cfg.Workers)
	go b.collect()
	for i := 0; i < cfg.Workers; i++ {
		go b.worker()
	}
	return b, nil
}

// Inflight reports admitted-but-unanswered requests (queued + executing).
func (b *Batcher) Inflight() int64 { return b.inflight.Load() }

// QueueDepth reports requests sitting in the admission queue.
func (b *Batcher) QueueDepth() int { return len(b.in) }

// Submit enqueues one feature row with its request options and blocks until
// the result is ready, ctx is done, or the batcher closes. Admission fails
// fast: a full queue or inflight cap returns ErrOverloaded immediately so
// overloaded servers shed instead of stacking up doomed work. ctx rides
// with the request — if it expires while the row is still queued, the row
// is answered with ctx.Err() and never reaches the backend.
func (b *Batcher) Submit(ctx context.Context, features []float64, opts RequestOptions) (Result, error) {
	return b.submit(ctx, features, opts, trace.SpanFrom(ctx))
}

// submit is Submit with the request's trace span already extracted — the
// Runtime path resolves the span once and shares it between the batcher and
// its own post-response span materialization.
func (b *Batcher) submit(ctx context.Context, features []float64, opts RequestOptions, span trace.Span) (Result, error) {
	if len(features) != b.dim {
		return Result{}, fmt.Errorf("%w: got %d features, model expects %d", ErrRequest, len(features), b.dim)
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	r := &request{
		ctx:      ctx,
		features: features,
		opts:     opts,
		enqueued: time.Now(),
		resp:     make(chan response, 1), // buffered: a worker send never blocks on an abandoned request
		span:     span,
	}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return Result{}, ErrClosed
	}
	// Add-then-check keeps the cap airtight under concurrent Submits: a
	// load-then-add pair would let a whole burst pass the same reading.
	if max := b.cfg.MaxInflight; b.inflight.Add(1) > int64(max) && max > 0 {
		b.inflight.Add(-1)
		b.mu.RUnlock()
		return Result{}, b.shed()
	}
	select {
	case b.in <- r:
		b.mu.RUnlock()
	default:
		// Queue full: the collector is saturated. Shedding here (rather
		// than blocking) is what keeps the queue from filling with
		// requests staler than their callers' patience.
		b.inflight.Add(-1)
		b.mu.RUnlock()
		return Result{}, b.shed()
	}
	select {
	case resp := <-r.resp:
		return resp.res, resp.err
	case <-ctx.Done():
		// The request stays admitted; the collector or a worker will
		// observe the dead context, answer into the buffered channel, and
		// release the inflight slot.
		return Result{}, ctx.Err()
	}
}

func (b *Batcher) shed() error {
	if b.stats != nil {
		b.stats.shed.Add(1)
	}
	return ErrOverloaded
}

// reply answers one request and releases its admission slot.
func (b *Batcher) reply(r *request, resp response) {
	r.resp <- resp
	b.inflight.Add(-1)
}

// Close stops intake, cancels the execution context, drains pending
// requests, and waits for workers. Requests still queued are served by the
// shipped (cancellation-ignoring) backends; a backend that honors the
// context may instead abort them with its cancellation error, which is what
// keeps a hung external backend from wedging shutdown. Submit after Close
// returns ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.in)
	b.mu.Unlock()
	b.cancel()
	b.wg.Wait()
}

// collect is the single accumulator loop: it owns the pending slice and the
// latency-budget timer, so flush decisions need no locking.
func (b *Batcher) collect() {
	defer b.wg.Done()
	var pending []*request
	var timer *time.Timer
	var deadline <-chan time.Time

	flush := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			deadline = nil
		}
		if len(pending) == 0 {
			return
		}
		// First deadline pass: rows whose caller already gave up are
		// answered here and never occupy a batch slot.
		live := pending[:0]
		for _, r := range pending {
			if err := r.ctx.Err(); err != nil {
				if b.stats != nil {
					b.stats.expired.Add(1)
				}
				b.reply(r, response{err: err})
				continue
			}
			live = append(live, r)
		}
		pending = nil
		if len(live) == 0 {
			return
		}
		b.batches <- live
	}

	for {
		select {
		case r, ok := <-b.in:
			if !ok {
				flush()
				close(b.batches)
				return
			}
			pending = append(pending, r)
			if len(pending) == 1 {
				timer = time.NewTimer(b.cfg.MaxDelay)
				deadline = timer.C
			}
			if len(pending) >= b.cfg.MaxBatch {
				flush()
			}
		case <-deadline:
			timer = nil
			deadline = nil
			flush()
		}
	}
}

func (b *Batcher) worker() {
	defer b.wg.Done()
	for reqs := range b.batches {
		b.runBatch(reqs)
	}
}

// runBatch executes one flushed accumulation. The common case — every row
// carrying default (or identical) options — runs as a single tensor batch
// with no extra work; mixed options partition into per-options sub-batches
// so each ExecFunc call stays uniform.
func (b *Batcher) runBatch(reqs []*request) {
	uniform := true
	for _, r := range reqs[1:] {
		if r.opts != reqs[0].opts {
			uniform = false
			break
		}
	}
	if uniform {
		b.execGroup(reqs)
		return
	}
	// Partition preserving arrival order within each group. Options structs
	// are comparable, so they key the map directly.
	groups := make(map[RequestOptions][]*request)
	var order []RequestOptions
	for _, r := range reqs {
		if _, ok := groups[r.opts]; !ok {
			order = append(order, r.opts)
		}
		groups[r.opts] = append(groups[r.opts], r)
	}
	for _, opts := range order {
		b.execGroup(groups[opts])
	}
}

// groupContext derives the context one exec call runs under. When every row
// in the group is cancellable, the group context is cancelled as soon as the
// last submitter abandons its request, so a context-honoring backend stops
// mid-batch instead of finishing work nobody will read. Rows submitted with
// a non-cancellable context (the benchmark/background case) short-circuit to
// the batcher context with zero goroutine overhead. The returned release
// func must be called after exec returns.
func (b *Batcher) groupContext(reqs []*request) (context.Context, func()) {
	for _, r := range reqs {
		if r.ctx.Done() == nil {
			return b.ctx, func() {}
		}
	}
	ctx, cancel := context.WithCancel(b.ctx)
	live := new(atomic.Int64)
	live.Store(int64(len(reqs)))
	// AfterFunc registers a per-row callback without spawning a goroutine,
	// so the per-batch cost on the deadline-carrying hot path is a few
	// list insertions, not len(reqs) goroutine create/destroy pairs.
	stops := make([]func() bool, len(reqs))
	for i, r := range reqs {
		stops[i] = context.AfterFunc(r.ctx, func() {
			if live.Add(-1) == 0 {
				cancel()
			}
		})
	}
	return ctx, func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}

// execGroup assembles one uniform-options group into a pooled matrix, runs
// the ExecFunc, and fans results (or the error) back out to the submitters.
// Rows whose context died while the group queued are pruned first — the
// second deadline pass — so the backend only ever computes rows somebody is
// still waiting for; a group that is entirely dead skips the backend
// altogether.
func (b *Batcher) execGroup(reqs []*request) {
	live := reqs[:0]
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			if b.stats != nil {
				b.stats.expired.Add(1)
			}
			b.reply(r, response{err: err})
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	reqs = live

	start := time.Now()
	ctx, release := b.groupContext(reqs)
	// Traced batches get a BatchLog for the executor and backend to record
	// child spans into; the common untraced batch pays one Active() check
	// per row and allocates nothing.
	var blog *trace.BatchLog
	for _, r := range reqs {
		if r.span.Active() {
			blog = trace.NewBatchLog()
			ctx = trace.WithLog(ctx, blog)
			break
		}
	}
	// Assemble into a pooled matrix: each worker recycles the previous
	// batch's buffer instead of allocating one per flush.
	batch := tensor.Get(len(reqs), b.dim)
	for i, r := range reqs {
		copy(batch.Row(i), r.features)
	}
	results, err := b.exec(ctx, batch, reqs[0].opts)
	release()
	tensor.Put(batch)
	if err == nil && len(results) != len(reqs) {
		err = fmt.Errorf("%w: executor returned %d results for %d rows", ErrServe, len(results), len(reqs))
	}
	execMs := float64(time.Since(start).Microseconds()) / 1000
	if b.stats != nil {
		b.stats.recordBatch(len(reqs))
	}
	// A cancellation error means the run was aborted (all rows abandoned, or
	// the batcher closing), not that the backend misbehaved; any other error
	// is a backend fault and counts as one for every row — even rows whose
	// own deadline happened to pass during the (executed) batch, so a
	// failing backend can't hide behind tight client budgets.
	aborted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !aborted {
		b.logBatchError(err, reqs)
	}
	for i, r := range reqs {
		if err != nil {
			if ctxErr := r.ctx.Err(); ctxErr != nil && aborted {
				if b.stats != nil {
					b.stats.expired.Add(1)
				}
				b.reply(r, response{err: ctxErr})
				continue
			}
			if b.stats != nil {
				b.stats.errors.Add(1)
			}
			b.reply(r, response{err: err})
			continue
		}
		res := results[i]
		res.BatchSize = len(reqs)
		res.QueueMs = float64(start.Sub(r.enqueued).Microseconds()) / 1000
		res.ExecMs = execMs
		res.blog = blog
		if b.stats != nil {
			b.stats.recordResult(res)
		}
		b.reply(r, response{res: res})
	}
}

// logBatchError emits one structured log line for a failed batch execution
// — the visibility counterpart of the Stats.Errors counter, which records
// every failure but says nothing about which model, version, or traces were
// hit. Rate-limited to one line per errLogInterval via a CAS on the last
// log time, so the hot path never takes a lock and a failing backend under
// load cannot flood the log.
func (b *Batcher) logBatchError(err error, reqs []*request) {
	now := time.Now().UnixNano()
	last := b.lastErrLog.Load()
	if now-last < int64(errLogInterval) || !b.lastErrLog.CompareAndSwap(last, now) {
		return
	}
	logger := b.logger
	if logger == nil {
		logger = slog.Default()
	}
	// Collect the trace ids of the traced rows so the log line correlates
	// with /v1/trace/{id}; cap the list to keep the line bounded.
	var traceIDs []string
	for _, r := range reqs {
		if !r.span.Active() {
			continue
		}
		traceIDs = append(traceIDs, r.span.TraceID())
		if len(traceIDs) >= 8 {
			break
		}
	}
	logger.Error("batch execution failed",
		"model", b.model,
		"version", reqs[0].opts.Version,
		"batch_size", len(reqs),
		"trace_ids", traceIDs,
		"err", err)
}
