package serve

import (
	"context"
	"fmt"
	"time"

	"mobiledl/internal/metrics"
	"mobiledl/internal/mobile"
)

// RuntimeConfig wires one registered model into a serving runtime.
type RuntimeConfig struct {
	// Registry and Model name the backend; the model must already have a
	// loaded version (its input width fixes the batcher's feature dim).
	Registry *Registry
	Model    string
	// Batch tunes the adaptive batcher.
	Batch BatcherConfig
	// Device, Cloud, Net, Seed, and SleepNet parameterize the executor's
	// simulated environment (zero values take executor defaults).
	Device   mobile.Device
	Cloud    mobile.Device
	Net      mobile.Network
	Seed     int64
	SleepNet bool
}

// Runtime is the served form of one model: an executor fed by an adaptive
// batcher, resolving the registry's current (or a pinned) version at every
// batch boundary so hot swaps apply without a restart.
type Runtime struct {
	name     string
	reg      *Registry
	batcher  *Batcher
	exec     *Executor
	stats    *collector
	maxBatch int
	sleepNet bool
}

// NewRuntime builds and starts a runtime (its worker pool runs until Close).
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	if cfg.Registry == nil || cfg.Model == "" {
		return nil, fmt.Errorf("%w: runtime needs a registry and model name", ErrServe)
	}
	loaded, err := cfg.Registry.Get(cfg.Model)
	if err != nil {
		return nil, err
	}
	exec, err := NewExecutor(ExecutorConfig{
		Source:   func(version int) (*Loaded, error) { return cfg.Registry.GetVersion(cfg.Model, version) },
		Device:   cfg.Device,
		Cloud:    cfg.Cloud,
		Net:      cfg.Net,
		Seed:     cfg.Seed,
		SleepNet: cfg.SleepNet,
	})
	if err != nil {
		return nil, err
	}
	stats := newCollector()
	batcher, err := NewBatcher(loaded.Info.InputDim, cfg.Batch, exec.Execute, stats)
	if err != nil {
		return nil, err
	}
	return &Runtime{
		name:     cfg.Model,
		reg:      cfg.Registry,
		batcher:  batcher,
		exec:     exec,
		stats:    stats,
		maxBatch: batcher.cfg.MaxBatch,
		sleepNet: cfg.SleepNet,
	}, nil
}

// Name returns the served model's registry name.
func (rt *Runtime) Name() string { return rt.name }

// Predict serves one feature row with default options.
func (rt *Runtime) Predict(ctx context.Context, features []float64) (Result, error) {
	return rt.PredictWith(ctx, features, RequestOptions{})
}

// PredictWith serves one feature row under explicit request options through
// the batcher and executor, recording end-to-end latency. The modeled
// network time is added on top of the measured wall time unless the
// executor already slept it.
func (rt *Runtime) PredictWith(ctx context.Context, features []float64, opts RequestOptions) (Result, error) {
	start := time.Now()
	res, err := rt.batcher.Submit(ctx, features, opts)
	if err != nil {
		return Result{}, err
	}
	totalMs := float64(time.Since(start).Microseconds()) / 1000
	if !rt.sleepNet {
		totalMs += res.SimNetMs
	}
	rt.stats.recordRequest(totalMs)
	return res, nil
}

// Stats snapshots the runtime's serving counters.
func (rt *Runtime) Stats() Stats {
	return rt.stats.snapshot(rt.maxBatch, rt.batcher.Inflight(), rt.batcher.QueueDepth())
}

// WriteMetrics renders the runtime's counters as Prometheus series labeled
// with the model name — one model's slice of the /metrics payload.
func (rt *Runtime) WriteMetrics(w *metrics.PromWriter) {
	rt.stats.writeProm(w, rt.name, rt.maxBatch, rt.batcher.Inflight(), rt.batcher.QueueDepth())
}

// Close drains in-flight requests and stops the worker pool.
func (rt *Runtime) Close() { rt.batcher.Close() }
