package serve

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"mobiledl/internal/metrics"
	"mobiledl/internal/mobile"
	"mobiledl/internal/trace"
)

// RuntimeConfig wires one registered model into a serving runtime.
type RuntimeConfig struct {
	// Registry and Model name the backend; the model must already have a
	// loaded version (its input width fixes the batcher's feature dim).
	Registry *Registry
	Model    string
	// Batch tunes the adaptive batcher.
	Batch BatcherConfig
	// Device, Cloud, Net, Seed, and SleepNet parameterize the executor's
	// simulated environment (zero values take executor defaults).
	Device   mobile.Device
	Cloud    mobile.Device
	Net      mobile.Network
	Seed     int64
	SleepNet bool
	// Tracer, when set, samples predict calls into traces (nil disables
	// tracing at near-zero cost). Requests arriving with a span already in
	// ctx (the HTTP layer's traceparent path) are traced regardless.
	Tracer *trace.Tracer
	// Logger receives structured serving logs (batch failures); nil means
	// slog.Default().
	Logger *slog.Logger
}

// Runtime is the served form of one model: an executor fed by an adaptive
// batcher, resolving the registry's current (or a pinned) version at every
// batch boundary so hot swaps apply without a restart.
type Runtime struct {
	name     string
	reg      *Registry
	batcher  *Batcher
	exec     *Executor
	stats    *collector
	maxBatch int
	sleepNet bool
	tracer   *trace.Tracer
}

// NewRuntime builds and starts a runtime (its worker pool runs until Close).
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	if cfg.Registry == nil || cfg.Model == "" {
		return nil, fmt.Errorf("%w: runtime needs a registry and model name", ErrServe)
	}
	loaded, err := cfg.Registry.Get(cfg.Model)
	if err != nil {
		return nil, err
	}
	exec, err := NewExecutor(ExecutorConfig{
		Source:   func(version int) (*Loaded, error) { return cfg.Registry.GetVersion(cfg.Model, version) },
		Device:   cfg.Device,
		Cloud:    cfg.Cloud,
		Net:      cfg.Net,
		Seed:     cfg.Seed,
		SleepNet: cfg.SleepNet,
	})
	if err != nil {
		return nil, err
	}
	stats := newCollector()
	batcher, err := NewBatcher(loaded.Info.InputDim, cfg.Batch, exec.Execute, stats)
	if err != nil {
		return nil, err
	}
	batcher.logger = cfg.Logger
	batcher.model = cfg.Model
	return &Runtime{
		name:     cfg.Model,
		reg:      cfg.Registry,
		batcher:  batcher,
		exec:     exec,
		stats:    stats,
		maxBatch: batcher.cfg.MaxBatch,
		sleepNet: cfg.SleepNet,
		tracer:   cfg.Tracer,
	}, nil
}

// Name returns the served model's registry name.
func (rt *Runtime) Name() string { return rt.name }

// Predict serves one feature row with default options.
func (rt *Runtime) Predict(ctx context.Context, features []float64) (Result, error) {
	return rt.PredictWith(ctx, features, RequestOptions{})
}

// PredictWith serves one feature row under explicit request options through
// the batcher and executor, recording end-to-end latency. The modeled
// network time is added on top of the measured wall time unless the
// executor already slept it.
//
// Tracing: a span already in ctx (the HTTP layer's per-request root) rides
// into the batcher; otherwise the runtime's tracer head-samples and, on a
// hit, this call owns a fresh trace. Either way all span writes happen on
// this goroutine — the queue and batch spans are reconstructed here from the
// result's timing fields after Submit returns, and the backend's BatchLog
// records (written by the single executing worker, published via the result
// channel) are materialized under the batch span.
func (rt *Runtime) PredictWith(ctx context.Context, features []float64, opts RequestOptions) (Result, error) {
	sp := trace.SpanFrom(ctx)
	owned := false
	if !sp.Active() && rt.tracer.Sample() {
		sp = rt.tracer.Start("predict", trace.Str("model", rt.name))
		owned = true
	}
	start := time.Now()
	res, err := rt.batcher.submit(ctx, features, opts, sp)
	if err != nil {
		if owned {
			sp.EndErr(err)
		} else if sp.Active() {
			sp.Annotate(trace.Str("error", err.Error()))
		}
		return Result{}, err
	}
	totalMs := float64(time.Since(start).Microseconds()) / 1000
	if !rt.sleepNet {
		totalMs += res.SimNetMs
	}
	rt.stats.recordRequest(totalMs)
	if sp.Active() {
		qd := time.Duration(res.QueueMs * float64(time.Millisecond))
		ed := time.Duration(res.ExecMs * float64(time.Millisecond))
		sp.ChildAt("queue", start, qd)
		batch := sp.ChildAt("batch", start.Add(qd), ed,
			trace.Num("batch_size", float64(res.BatchSize)),
			trace.Num("model_version", float64(res.ModelVersion)))
		batch.AttachLog(res.blog)
		if owned {
			sp.End(trace.Num("sim_net_ms", res.SimNetMs))
		}
	}
	return res, nil
}

// Stats snapshots the runtime's serving counters.
func (rt *Runtime) Stats() Stats {
	return rt.stats.snapshot(rt.maxBatch, rt.batcher.Inflight(), rt.batcher.QueueDepth())
}

// WriteMetrics renders the runtime's counters as Prometheus series labeled
// with the model name — one model's slice of the /metrics payload.
func (rt *Runtime) WriteMetrics(w *metrics.PromWriter) {
	rt.stats.writeProm(w, rt.name, rt.maxBatch, rt.batcher.Inflight(), rt.batcher.QueueDepth())
}

// Close drains in-flight requests and stops the worker pool.
func (rt *Runtime) Close() { rt.batcher.Close() }
