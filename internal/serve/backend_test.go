package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mobiledl/internal/baselines"
	"mobiledl/internal/mobile"
	"mobiledl/internal/tensor"
)

// tensorFromRows copies a row-slice dataset into a matrix.
func tensorFromRows(rows [][]float64) *tensor.Matrix {
	m := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// trainedForest fits a small random forest on 8-feature, 4-class blobs so
// its serving interface matches the test MLP and cascade.
func trainedForest(t *testing.T) *baselines.RandomForest {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const n, dim, classes = 160, 8, 4
	x := make([][]float64, 0, n)
	labels := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c := i % classes
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(c) + 0.3*rng.NormFloat64()
		}
		x = append(x, row)
		labels = append(labels, c)
	}
	m := tensorFromRows(x)
	forest := baselines.NewRandomForest()
	forest.NumTrees = 10
	if err := forest.Fit(m, labels, classes); err != nil {
		t.Fatal(err)
	}
	return forest
}

// TestAllBackendKindsThroughOneServer is the redesign's acceptance test: a
// baselines forest, a plain nn.Sequential, and a split/early-exit cascade
// are registered and served through the same Runtime/HTTP path, with the
// top_k and version request options honored per model.
func TestAllBackendKindsThroughOneServer(t *testing.T) {
	reg := NewRegistry()

	dense := mustDense(t, 9)
	if _, err := reg.Install("mlp", dense); err != nil {
		t.Fatal(err)
	}
	ee, err := newCascade(5)
	if err != nil {
		t.Fatal(err)
	}
	ee.Threshold = 0.5
	cb, err := NewCascadeBackend(ee)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("cascade", cb); err != nil {
		t.Fatal(err)
	}
	bb, err := NewBaselineBackend(trainedForest(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("forest", bb); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(reg)
	for _, name := range []string{"mlp", "cascade", "forest"} {
		rt, err := NewRuntime(RuntimeConfig{
			Registry: reg, Model: name,
			Batch: BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatalf("%s runtime: %v", name, err)
		}
		srv.Add(rt)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The registry lists one model per backend kind.
	kinds := map[string]string{}
	for _, info := range reg.Snapshot() {
		kinds[info.Name] = info.Kind
	}
	want := map[string]string{"mlp": "dense", "cascade": "cascade", "forest": "baseline"}
	for name, kind := range want {
		if kinds[name] != kind {
			t.Fatalf("model %q listed as %q, want %q (all: %v)", name, kinds[name], kind, kinds)
		}
	}

	// Every kind answers the same request shape through the same HTTP path,
	// honoring top_k.
	feats := [][]float64{{1, -1, 0.5, 0.25, -0.5, 2, -2, 1}, {2, 2, 2, 2, 2, 2, 2, 2}}
	for name := range want {
		body, _ := json.Marshal(PredictRequest{
			Model: name, Features: feats, Options: RequestOptions{TopK: 3},
		})
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var pr PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s predict status %d", name, resp.StatusCode)
		}
		if len(pr.Rows) != len(feats) {
			t.Fatalf("%s: %d rows answered for %d sent", name, len(pr.Rows), len(feats))
		}
		for i, row := range pr.Rows {
			if row.Class < 0 || row.Class >= 4 {
				t.Fatalf("%s row %d: class %d out of range", name, i, row.Class)
			}
			if len(row.Probs) != 3 {
				t.Fatalf("%s row %d: top_k=3 returned %d probs", name, i, len(row.Probs))
			}
			if row.Probs[0].Class != row.Class {
				t.Fatalf("%s row %d: top prob class %d != predicted %d", name, i, row.Probs[0].Class, row.Class)
			}
			sum := 0.0
			for k, cp := range row.Probs {
				if cp.Prob < 0 || cp.Prob > 1 {
					t.Fatalf("%s row %d: prob %v out of [0,1]", name, i, cp.Prob)
				}
				if k > 0 && cp.Prob > row.Probs[k-1].Prob+1e-12 {
					t.Fatalf("%s row %d: probs not descending: %+v", name, i, row.Probs)
				}
				sum += cp.Prob
			}
			if sum > 1+1e-6 {
				t.Fatalf("%s row %d: top-3 probs sum to %v > 1", name, i, sum)
			}
			if row.ModelVersion != 1 {
				t.Fatalf("%s row %d: version %d, want 1", name, i, row.ModelVersion)
			}
		}
	}

	// Hot-swap the dense model, then pin a request back to version 1.
	if _, err := reg.Install("mlp", mustDense(t, 31)); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		version  int
		wantVers int
	}{{0, 2}, {1, 1}, {2, 2}} {
		body, _ := json.Marshal(PredictRequest{
			Model: "mlp", Features: feats[:1], Options: RequestOptions{Version: tc.version},
		})
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var pr PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pin %d: status %d", tc.version, resp.StatusCode)
		}
		if pr.Rows[0].ModelVersion != tc.wantVers {
			t.Fatalf("pin %d answered by v%d, want v%d", tc.version, pr.Rows[0].ModelVersion, tc.wantVers)
		}
	}
}

// TestCascadeNoPerturbOption pins the no_perturb knob: with perturbation
// disabled, offloaded rows are deterministic (the only randomness in the
// cascade path is the DP perturbation) but still pay the simulated uplink.
func TestCascadeNoPerturbOption(t *testing.T) {
	ee, err := newCascade(5)
	if err != nil {
		t.Fatal(err)
	}
	ee.Threshold = 1 // every row offloads
	ee.Pipeline.NoiseSigma = 50
	ee.Pipeline.NullRate = 0.9
	cb, err := NewCascadeBackend(ee)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Install("cascade", cb); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "cascade",
		Batch: BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	feats := []float64{1, -1, 0.5, 0.25, -0.5, 2, -2, 1}
	want := -1
	for i := 0; i < 10; i++ {
		res, err := rt.PredictWith(context.Background(), feats, RequestOptions{NoPerturb: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Local {
			t.Fatalf("threshold 1 must offload: %+v", res)
		}
		if res.SimNetMs <= 0 {
			t.Fatalf("no_perturb must still pay the simulated uplink: %+v", res)
		}
		if res.Placement != mobile.PlaceSplit {
			t.Fatalf("placement %s, want split", res.Placement)
		}
		if want == -1 {
			want = res.Class
		} else if res.Class != want {
			t.Fatalf("no_perturb answers flipped: %d then %d", want, res.Class)
		}
	}
}

// TestBaselineBackendValidation covers the construction contract.
func TestBaselineBackendValidation(t *testing.T) {
	if _, err := NewBaselineBackend(nil, 8); err == nil {
		t.Fatal("nil classifier must be rejected")
	}
	if _, err := NewBaselineBackend(baselines.NewRandomForest(), 8); err == nil {
		t.Fatal("unfitted classifier must be rejected")
	}
	forest := trainedForest(t)
	if _, err := NewBaselineBackend(forest, 0); err == nil {
		t.Fatal("zero input dim must be rejected")
	}
	// A width narrower than the fitted feature count must fail at
	// construction (the probe), not panic a batcher worker at serve time.
	if _, err := NewBaselineBackend(forest, 3); err == nil {
		t.Fatal("input dim narrower than the fitted features must be rejected")
	}
	b, err := NewBaselineBackend(forest, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Params() != nil {
		t.Fatal("baseline backends carry no tensor parameters")
	}
	info := b.Describe()
	if info.Kind != "baseline" || info.Classes != 4 || info.InputDim != 8 || info.Algorithm == "" {
		t.Fatalf("baseline info: %+v", info)
	}
	// And the registry refuses to Load weights into one.
	reg := NewRegistry()
	if err := reg.Register("f", func() (Backend, error) { return b, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("f", bytes.NewReader(nil)); err == nil {
		t.Fatal("weight load into a param-less backend must fail")
	}
	if _, err := reg.Install("f2", b); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Checkpoint("f2"); err == nil {
		t.Fatal("checkpoint of a param-less backend must fail")
	}
}

// TestTopKClampsToClasses: asking for more classes than exist returns all of
// them, summing to ~1.
func TestTopKClampsToClasses(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 3)); err != nil {
		t.Fatal(err)
	}
	rt := newPlainRuntime(t, reg, "mlp", BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond})
	res, err := rt.PredictWith(context.Background(), []float64{1, 2, 3, 4, 5, 6, 7, 8}, RequestOptions{TopK: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probs) != 4 {
		t.Fatalf("top_k=99 on a 4-class model returned %d probs", len(res.Probs))
	}
	sum := 0.0
	for _, cp := range res.Probs {
		sum += cp.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("full distribution sums to %v", sum)
	}
}
