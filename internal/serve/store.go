package serve

import (
	"io"
	"time"
)

// PublishRecord is the durable form of one published model version: the
// registry writes one per Param-bearing install, and replays them at boot to
// recover the version history a crash would otherwise erase. Weights is the
// nn.EncodeWeights blob; the architecture itself is code (the model's
// registered Factory), so a record from a mismatched architecture fails
// loudly at recovery instead of serving garbage.
type PublishRecord struct {
	Model   string
	Version int
	// Kind is the backend family ("dense", "cascade", ...), recorded for
	// operator inspection; recovery rebuilds from the factory regardless.
	Kind string
	// Meta is the training provenance the install carried, if any.
	Meta *VersionMeta
	// Weights is the nn.EncodeWeights blob of the installed backend.
	Weights []byte
	At      time.Time
}

// Store is the persistence seam the registry writes through. The registry is
// storage-agnostic: anything that can durably append a publish record, replay
// the retained records at boot, and stream an online backup satisfies it
// (internal/store ships the WAL-backed implementation).
//
// Store failures never propagate into serving: a failed append leaves the
// version installed in RAM, flips the registry's StoreStatus to "degraded",
// and counts in StoreErrors — the predict path never touches the store at
// all.
type Store interface {
	// AppendPublish durably records one published version. It must only
	// return nil once the record would survive a crash.
	AppendPublish(rec PublishRecord) error
	// Publishes returns the retained records, ordered by model then ascending
	// version — the replay stream Registry.RecoverFrom installs.
	Publishes() []PublishRecord
	// Backup streams a consistent snapshot of the store to w (the online
	// GET /v1/backup payload), returning the bytes written. It must not
	// block appends for longer than the stream takes.
	Backup(w io.Writer) (int64, error)
}

// Store states reported by Registry.StoreStatus and the /healthz "store"
// field.
const (
	// StoreDisabled: no store configured; persistence is off by choice.
	StoreDisabled = "disabled"
	// StoreOK: the last append succeeded (or none was attempted yet).
	StoreOK = "ok"
	// StoreDegraded: the most recent append failed; serving continues from
	// RAM and publishes keep being attempted (a later success clears this).
	StoreDegraded = "degraded"
)
