package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/compress"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
)

// Factory builds a fresh, architecture-complete (but untrained) instance of
// a servable. Architectures are code, not data: the registry stores
// factories and moves only weights, so a weight blob from a mismatched
// architecture fails loudly at load time.
type Factory func() (*Servable, error)

// Loaded is one immutable installed version of a model. Executors grab a
// *Loaded per batch; hot swaps install a new one without disturbing batches
// already running against the old.
type Loaded struct {
	Name     string
	Version  int
	Servable *Servable
	// Sizes is set when the model went through the compression pipeline.
	Sizes    *compress.StageSizes
	Params   int
	LoadedAt time.Time
	// workload is the per-sample placement-planning workload, computed once
	// at install time so the per-batch hot path doesn't rebuild it.
	workload mobile.Workload
}

// ModelInfo is the registry listing entry for the /v1/models endpoint.
type ModelInfo struct {
	Name       string    `json:"name"`
	Version    int       `json:"version"`
	Kind       string    `json:"kind"` // "plain" or "cascade"
	Params     int       `json:"params"`
	Compressed bool      `json:"compressed"`
	Ratio      float64   `json:"compression_ratio,omitempty"`
	LoadedAt   time.Time `json:"loaded_at"`
}

type regEntry struct {
	factory Factory
	writeMu sync.Mutex // serializes installs; version is guarded by it
	version int
	cur     atomic.Pointer[Loaded]
}

// Registry names, versions, and hot-swaps servable models. Register/Load/
// Install take a write path guarded per entry; Get is a lock-free atomic
// load so the serving hot path never contends with swaps.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// Register declares a model name and its architecture factory. Registering
// an existing name is an error (architectures are fixed per name; new
// weights arrive via Load).
func (r *Registry) Register(name string, factory Factory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("%w: register needs a name and factory", ErrServe)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: model %q already registered", ErrServe, name)
	}
	r.entries[name] = &regEntry{factory: factory}
	return nil
}

func (r *Registry) entry(name string) (*regEntry, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: model %q not registered", ErrServe, name)
	}
	return e, nil
}

// Load builds a fresh instance from the factory, reads a SaveWeights blob
// into it, and atomically installs it as the new current version. In-flight
// batches keep the version they started with.
func (r *Registry) Load(name string, weights io.Reader) (int, error) {
	e, err := r.entry(name)
	if err != nil {
		return 0, err
	}
	s, err := r.build(e)
	if err != nil {
		return 0, err
	}
	if err := nn.LoadWeights(weights, s.Params()); err != nil {
		return 0, fmt.Errorf("serve: load %q: %w", name, err)
	}
	return r.install(e, name, s, nil)
}

// LoadCompressed loads weights like Load, then pushes the model through the
// Deep Compression pipeline and installs the reconstructed (pruned +
// quantized) network, recording the stage sizes. Only plain models compress;
// cascades keep their privacy-calibrated halves intact.
func (r *Registry) LoadCompressed(name string, weights io.Reader, cfg compress.PipelineConfig) (int, error) {
	e, err := r.entry(name)
	if err != nil {
		return 0, err
	}
	s, err := r.build(e)
	if err != nil {
		return 0, err
	}
	if s.Net == nil {
		return 0, fmt.Errorf("%w: model %q is a cascade; compression serves plain models only", ErrServe, name)
	}
	if err := nn.LoadWeights(weights, s.Params()); err != nil {
		return 0, fmt.Errorf("serve: load %q: %w", name, err)
	}
	res, err := compress.RunPipeline(s.Net, cfg)
	if err != nil {
		return 0, fmt.Errorf("serve: compress %q: %w", name, err)
	}
	return r.install(e, name, &Servable{Net: res.Model}, &res.Sizes)
}

// Install registers name on first use (with no factory) and installs an
// already-built servable directly — the path for models trained in-process.
// Subsequent Installs under the same name hot-swap and bump the version.
func (r *Registry) Install(name string, s *Servable) (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if name == "" {
		return 0, fmt.Errorf("%w: install needs a name", ErrServe)
	}
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		e = &regEntry{}
		r.entries[name] = e
	}
	r.mu.Unlock()
	return r.install(e, name, s, nil)
}

// Get returns the current version of a model; lock-free after the map read.
func (r *Registry) Get(name string) (*Loaded, error) {
	e, err := r.entry(name)
	if err != nil {
		return nil, err
	}
	l := e.cur.Load()
	if l == nil {
		return nil, fmt.Errorf("%w: model %q registered but no weights loaded", ErrServe, name)
	}
	return l, nil
}

// Snapshot lists all models with a loaded version, sorted by name.
func (r *Registry) Snapshot() []ModelInfo {
	r.mu.RLock()
	loaded := make([]*Loaded, 0, len(r.entries))
	for _, e := range r.entries {
		if l := e.cur.Load(); l != nil {
			loaded = append(loaded, l)
		}
	}
	r.mu.RUnlock()
	infos := make([]ModelInfo, 0, len(loaded))
	for _, l := range loaded {
		info := ModelInfo{
			Name: l.Name, Version: l.Version, Kind: "plain",
			Params: l.Params, LoadedAt: l.LoadedAt,
		}
		if l.Servable.Cascade != nil {
			info.Kind = "cascade"
		}
		if l.Sizes != nil {
			info.Compressed = true
			info.Ratio = l.Sizes.Ratio()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Checkpoint serializes the current weights of a model, the blob Load
// accepts — Checkpoint-then-Load round-trips a hot swap.
func (r *Registry) Checkpoint(name string) ([]byte, error) {
	l, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return nn.EncodeWeights(l.Servable)
}

func (r *Registry) build(e *regEntry) (*Servable, error) {
	if e.factory == nil {
		return nil, fmt.Errorf("%w: model has no architecture factory (Install-only)", ErrServe)
	}
	s, err := e.factory()
	if err != nil {
		return nil, fmt.Errorf("serve: factory: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// install atomically publishes a new version. It refuses swaps that change
// the served interface (input width or class count): the batcher's feature
// dim is fixed at runtime construction, so such a swap would fail every
// subsequent request instead of failing the swap.
func (r *Registry) install(e *regEntry, name string, s *Servable, sizes *compress.StageSizes) (int, error) {
	newIn, err := s.InputDim()
	if err != nil {
		return 0, err
	}
	newClasses, err := s.Classes()
	if err != nil {
		return 0, err
	}
	w, err := s.workload()
	if err != nil {
		return 0, err
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if cur := e.cur.Load(); cur != nil {
		curIn, err1 := cur.Servable.InputDim()
		curClasses, err2 := cur.Servable.Classes()
		if err1 == nil && err2 == nil && (curIn != newIn || curClasses != newClasses) {
			return 0, fmt.Errorf("%w: hot swap for %q changes interface %d->%d inputs, %d->%d classes",
				ErrServe, name, curIn, newIn, curClasses, newClasses)
		}
	}
	e.version++
	e.cur.Store(&Loaded{
		Name: name, Version: e.version, Servable: s, Sizes: sizes,
		Params: nn.NumParams(s.Params()), LoadedAt: time.Now(),
		workload: w,
	})
	return e.version, nil
}
