package serve

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobiledl/internal/compress"
	"mobiledl/internal/nn"
)

// Factory builds a fresh, architecture-complete (but untrained) instance of
// a backend. Architectures are code, not data: the registry stores
// factories and moves only weights, so a weight blob from a mismatched
// architecture fails loudly at load time.
type Factory func() (Backend, error)

// versionHistory is how many versions (including the current one) each
// registry entry retains, so requests pinned to a recent version keep
// resolving across hot swaps.
const versionHistory = 4

// VersionMeta is optional training provenance attached to an installed
// version — which producer published it, after which training round, at what
// held-out accuracy. The fedserve coordinator stamps every version it
// publishes so /v1/models shows accuracy moving across hot swaps.
type VersionMeta struct {
	// Source names the producer (e.g. "fedserve").
	Source string `json:"source,omitempty"`
	// Round is the training round that produced these weights.
	Round int `json:"round"`
	// Accuracy is the held-out accuracy the version was accepted at.
	Accuracy float64 `json:"accuracy"`
}

// Loaded is one immutable installed version of a model. Executors grab a
// *Loaded per batch; hot swaps install a new one without disturbing batches
// already running against the old.
type Loaded struct {
	Name    string
	Version int
	Backend Backend
	// Info caches Backend.Describe so the per-batch hot path never calls
	// into the backend for metadata.
	Info BackendInfo
	// Sizes is set when the model went through the compression pipeline.
	Sizes *compress.StageSizes
	// Meta is the training provenance, when the installer supplied one.
	Meta     *VersionMeta
	LoadedAt time.Time
}

// ModelInfo is the registry listing entry for the /v1/models endpoint.
type ModelInfo struct {
	Name       string    `json:"name"`
	Version    int       `json:"version"`
	Kind       string    `json:"kind"` // "dense", "cascade", or "baseline"
	Algorithm  string    `json:"algorithm,omitempty"`
	Params     int       `json:"params"`
	Compressed bool      `json:"compressed"`
	Ratio      float64   `json:"compression_ratio,omitempty"`
	LoadedAt   time.Time `json:"loaded_at"`
	// Train carries the version's training provenance (round, held-out
	// accuracy, producer) for versions published by a training pipeline.
	Train *VersionMeta `json:"train,omitempty"`
}

type regEntry struct {
	factory Factory
	writeMu sync.Mutex // serializes installs; version is guarded by it
	version int
	cur     atomic.Pointer[Loaded]

	histMu  sync.RWMutex
	history map[int]*Loaded // last versionHistory versions, incl. current
}

// Registry names, versions, and hot-swaps serving backends. Register/Load/
// Install take a write path guarded per entry; Get is a lock-free atomic
// load so the serving hot path never contends with swaps. A bounded history
// of past versions stays resolvable for version-pinned requests.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry

	// store, when set, durably records every Param-bearing publish. Append
	// failures degrade (RAM-only publishes, StoreStatus "degraded") instead
	// of failing the install — persistence is never allowed to take serving
	// down with it.
	store         Store
	storeErrs     atomic.Uint64
	storeDegraded atomic.Bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// SetStore attaches the persistence store. Call it before installs begin;
// subsequent Param-bearing publishes are appended to the store, and
// RecoverFrom replays it at boot. A nil store turns persistence off
// (StoreStatus "disabled").
func (r *Registry) SetStore(st Store) {
	r.mu.Lock()
	r.store = st
	r.mu.Unlock()
}

// Store returns the attached persistence store (nil when persistence is
// off) — the handle the HTTP layer streams /v1/backup from.
func (r *Registry) Store() Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.store
}

// StoreStatus reports the persistence health surfaced on /healthz:
// "disabled" (no store), "ok", or "degraded" (the last append failed;
// serving continues from RAM).
func (r *Registry) StoreStatus() string {
	if r.Store() == nil {
		return StoreDisabled
	}
	if r.storeDegraded.Load() {
		return StoreDegraded
	}
	return StoreOK
}

// StoreErrors counts failed store appends over the registry's lifetime (the
// mobiledl_store_errors_total counter).
func (r *Registry) StoreErrors() uint64 { return r.storeErrs.Load() }

// persist appends a publish record for an installed version. Failures
// degrade rather than propagate: the version stays installed in RAM, the
// error is counted, and the degraded flag flips until an append succeeds
// again. Install-only backends without parameters (nothing to re-materialize
// from) are skipped.
func (r *Registry) persist(l *Loaded) {
	st := r.Store()
	if st == nil || len(l.Backend.Params()) == 0 {
		return
	}
	blob, err := nn.EncodeWeights(l.Backend)
	if err == nil {
		err = st.AppendPublish(PublishRecord{
			Model: l.Name, Version: l.Version, Kind: l.Info.Kind,
			Meta: l.Meta, Weights: blob, At: l.LoadedAt,
		})
	}
	if err != nil {
		r.storeErrs.Add(1)
		if !r.storeDegraded.Swap(true) {
			slog.Warn("model store degraded: publishes continue in RAM",
				"model", l.Name, "version", l.Version, "err", err)
		}
		return
	}
	if r.storeDegraded.Swap(false) {
		slog.Info("model store recovered", "model", l.Name, "version", l.Version)
	}
}

// RecoverFrom replays a store's publish records into the registry — the boot
// path that makes a restart a non-event. Records are installed in (model,
// ascending version) order, so each entry ends current at its last durably
// published version with the version counter continuing past it. Only models
// with a registered factory recover (architectures are code); records for
// unregistered or Install-only names are skipped and counted. A record whose
// weights no longer fit the factory's architecture aborts with an error
// rather than serving a mismatched model.
func (r *Registry) RecoverFrom(st Store) (restored, skipped int, err error) {
	for _, rec := range st.Publishes() {
		r.mu.RLock()
		e, ok := r.entries[rec.Model]
		r.mu.RUnlock()
		if !ok || e.factory == nil {
			skipped++
			continue
		}
		b, berr := r.build(e)
		if berr != nil {
			return restored, skipped, fmt.Errorf("recover %q v%d: %w", rec.Model, rec.Version, berr)
		}
		if len(b.Params()) == 0 {
			skipped++
			continue
		}
		if lerr := nn.LoadWeights(bytes.NewReader(rec.Weights), b.Params()); lerr != nil {
			return restored, skipped, fmt.Errorf("recover %q v%d: %w", rec.Model, rec.Version, lerr)
		}
		if ierr := r.installRecovered(e, rec, b); ierr != nil {
			return restored, skipped, ierr
		}
		restored++
	}
	return restored, skipped, nil
}

// installRecovered re-installs one replayed version under its recorded
// version number (no store append — the record is already durable). The
// entry's version counter advances to at least the recovered version so
// post-recovery installs keep numbering monotonically.
func (r *Registry) installRecovered(e *regEntry, rec PublishRecord, b Backend) error {
	info := b.Describe()
	if info.InputDim <= 0 || info.Classes <= 0 {
		return fmt.Errorf("%w: recovered backend for %q describes %d inputs, %d classes",
			ErrServe, rec.Model, info.InputDim, info.Classes)
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if cur := e.cur.Load(); cur != nil && cur.Version >= rec.Version {
		// An already-installed newer (or equal) version wins; the stale
		// record still lands in history below if there is room.
		if cur.Info.InputDim != info.InputDim || cur.Info.Classes != info.Classes {
			return fmt.Errorf("%w: recovered %q v%d changes interface %d->%d inputs, %d->%d classes",
				ErrServe, rec.Model, rec.Version, cur.Info.InputDim, info.InputDim, cur.Info.Classes, info.Classes)
		}
	}
	if rec.Version > e.version {
		e.version = rec.Version
	}
	l := &Loaded{
		Name: rec.Model, Version: rec.Version, Backend: b, Info: info,
		Meta: rec.Meta, LoadedAt: rec.At,
	}
	e.histMu.Lock()
	e.history[rec.Version] = l
	delete(e.history, rec.Version-versionHistory)
	e.histMu.Unlock()
	if cur := e.cur.Load(); cur == nil || rec.Version > cur.Version {
		e.cur.Store(l)
	}
	return nil
}

// Register declares a model name and its architecture factory. Registering
// an existing name is an error (architectures are fixed per name; new
// weights arrive via Load).
func (r *Registry) Register(name string, factory Factory) error {
	if name == "" || factory == nil {
		return fmt.Errorf("%w: register needs a name and factory", ErrServe)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("%w: model %q already registered", ErrServe, name)
	}
	r.entries[name] = &regEntry{factory: factory, history: make(map[int]*Loaded)}
	return nil
}

func (r *Registry) entry(name string) (*regEntry, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: model %q not registered", ErrServe, name)
	}
	return e, nil
}

// Load builds a fresh backend from the factory, reads a SaveWeights blob
// into its parameters, and atomically installs it as the new current
// version. Only Param-bearing backends (dense, cascade) load; in-flight
// batches keep the version they started with.
func (r *Registry) Load(name string, weights io.Reader) (int, error) {
	e, err := r.entry(name)
	if err != nil {
		return 0, err
	}
	b, err := r.build(e)
	if err != nil {
		return 0, err
	}
	ps := b.Params()
	if len(ps) == 0 {
		return 0, fmt.Errorf("%w: backend %q has no parameters; weight hot swap needs a Param-bearing backend", ErrServe, name)
	}
	if err := nn.LoadWeights(weights, ps); err != nil {
		return 0, fmt.Errorf("serve: load %q: %w", name, err)
	}
	return r.install(e, name, b, nil, nil)
}

// LoadCompressed loads weights like Load, then pushes the model through the
// Deep Compression pipeline and installs the reconstructed (pruned +
// quantized) network, recording the stage sizes. Only dense backends
// compress; cascades keep their privacy-calibrated halves intact and
// baselines have nothing to quantize.
func (r *Registry) LoadCompressed(name string, weights io.Reader, cfg compress.PipelineConfig) (int, error) {
	e, err := r.entry(name)
	if err != nil {
		return 0, err
	}
	b, err := r.build(e)
	if err != nil {
		return 0, err
	}
	db, ok := b.(*DenseBackend)
	if !ok {
		return 0, fmt.Errorf("%w: model %q is a %s backend; compression serves dense models only",
			ErrServe, name, b.Describe().Kind)
	}
	if err := nn.LoadWeights(weights, db.Params()); err != nil {
		return 0, fmt.Errorf("serve: load %q: %w", name, err)
	}
	res, err := compress.RunPipeline(db.Net(), cfg)
	if err != nil {
		return 0, fmt.Errorf("serve: compress %q: %w", name, err)
	}
	nb, err := NewDenseBackend(res.Model)
	if err != nil {
		return 0, err
	}
	return r.install(e, name, nb, &res.Sizes, nil)
}

// Install registers name on first use (with no factory) and installs an
// already-built backend directly — the path for models trained in-process,
// and the only path for baseline backends. Subsequent Installs under the
// same name hot-swap and bump the version.
func (r *Registry) Install(name string, b Backend) (int, error) {
	return r.InstallWithMeta(name, b, nil)
}

// InstallWithMeta is Install carrying training provenance: the published
// version records meta and surfaces it in Snapshot (the /v1/models listing),
// so clients can see which round and held-out accuracy each hot-swapped
// version came from. This is the publication path of the fedserve
// coordinator.
func (r *Registry) InstallWithMeta(name string, b Backend, meta *VersionMeta) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("%w: install needs a name", ErrServe)
	}
	if b == nil {
		return 0, fmt.Errorf("%w: install needs a backend", ErrServe)
	}
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		e = &regEntry{history: make(map[int]*Loaded)}
		r.entries[name] = e
	}
	r.mu.Unlock()
	return r.install(e, name, b, nil, meta)
}

// Get returns the current version of a model; lock-free after the map read.
func (r *Registry) Get(name string) (*Loaded, error) {
	e, err := r.entry(name)
	if err != nil {
		return nil, err
	}
	l := e.cur.Load()
	if l == nil {
		return nil, fmt.Errorf("%w: model %q registered but no weights loaded", ErrServe, name)
	}
	return l, nil
}

// GetVersion resolves a version-pinned lookup: version 0 means current
// (lock-free), any other version must still be in the entry's bounded
// history. An unknown pin is a client error (ErrRequest).
func (r *Registry) GetVersion(name string, version int) (*Loaded, error) {
	if version == 0 {
		return r.Get(name)
	}
	e, err := r.entry(name)
	if err != nil {
		return nil, err
	}
	e.histMu.RLock()
	l := e.history[version]
	e.histMu.RUnlock()
	if l == nil {
		return nil, fmt.Errorf("%w: model %q has no version %d (the registry retains the last %d)",
			ErrRequest, name, version, versionHistory)
	}
	return l, nil
}

// Snapshot lists all models with a loaded version, sorted by name.
func (r *Registry) Snapshot() []ModelInfo {
	r.mu.RLock()
	loaded := make([]*Loaded, 0, len(r.entries))
	for _, e := range r.entries {
		if l := e.cur.Load(); l != nil {
			loaded = append(loaded, l)
		}
	}
	r.mu.RUnlock()
	infos := make([]ModelInfo, 0, len(loaded))
	for _, l := range loaded {
		info := ModelInfo{
			Name: l.Name, Version: l.Version, Kind: l.Info.Kind,
			Algorithm: l.Info.Algorithm, Params: l.Info.NumParams,
			LoadedAt: l.LoadedAt, Train: l.Meta,
		}
		if l.Sizes != nil {
			info.Compressed = true
			info.Ratio = l.Sizes.Ratio()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Inventory lists the models with a loaded current version and that
// version's number — the cheap snapshot the cluster layer gossips to peers
// (Snapshot carries provenance and sizes this path never needs).
func (r *Registry) Inventory() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	inv := make(map[string]int, len(r.entries))
	for name, e := range r.entries {
		if l := e.cur.Load(); l != nil {
			inv[name] = l.Version
		}
	}
	return inv
}

// Checkpoint serializes the current weights of a model, the blob Load
// accepts — Checkpoint-then-Load round-trips a hot swap.
func (r *Registry) Checkpoint(name string) ([]byte, error) {
	l, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	if len(l.Backend.Params()) == 0 {
		return nil, fmt.Errorf("%w: backend %q has no parameters to checkpoint", ErrServe, name)
	}
	return nn.EncodeWeights(l.Backend)
}

// Close closes every backend the registry still retains (current and
// historical versions). The registry must not serve afterwards.
func (r *Registry) Close() error {
	r.mu.RLock()
	entries := make([]*regEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	var firstErr error
	for _, e := range entries {
		e.histMu.RLock()
		versions := make([]*Loaded, 0, len(e.history))
		for _, l := range e.history {
			versions = append(versions, l)
		}
		e.histMu.RUnlock()
		for _, l := range versions {
			if err := l.Backend.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (r *Registry) build(e *regEntry) (Backend, error) {
	if e.factory == nil {
		return nil, fmt.Errorf("%w: model has no architecture factory (Install-only)", ErrServe)
	}
	b, err := e.factory()
	if err != nil {
		return nil, fmt.Errorf("serve: factory: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("%w: factory returned no backend", ErrServe)
	}
	return b, nil
}

// install atomically publishes a new version. It refuses swaps that change
// the served interface (input width or class count): the batcher's feature
// dim is fixed at runtime construction, so such a swap would fail every
// subsequent request instead of failing the swap.
func (r *Registry) install(e *regEntry, name string, b Backend, sizes *compress.StageSizes, meta *VersionMeta) (int, error) {
	info := b.Describe()
	if info.InputDim <= 0 || info.Classes <= 0 {
		return 0, fmt.Errorf("%w: backend for %q describes %d inputs, %d classes",
			ErrServe, name, info.InputDim, info.Classes)
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if cur := e.cur.Load(); cur != nil {
		if cur.Info.InputDim != info.InputDim || cur.Info.Classes != info.Classes {
			return 0, fmt.Errorf("%w: hot swap for %q changes interface %d->%d inputs, %d->%d classes",
				ErrServe, name, cur.Info.InputDim, info.InputDim, cur.Info.Classes, info.Classes)
		}
	}
	e.version++
	l := &Loaded{
		Name: name, Version: e.version, Backend: b, Info: info,
		Sizes: sizes, Meta: meta, LoadedAt: time.Now(),
	}
	e.histMu.Lock()
	if e.history == nil {
		e.history = make(map[int]*Loaded)
	}
	e.history[e.version] = l
	// Eviction drops the reference without calling Backend.Close: the
	// evicted version may still be serving an in-flight batch. Backends
	// holding real resources are released by Registry.Close at shutdown
	// (Server.Close calls it).
	delete(e.history, e.version-versionHistory)
	e.histMu.Unlock()
	e.cur.Store(l)
	// Persist after the in-RAM swap, still under writeMu so the store sees
	// each model's versions in order. A store failure degrades (counted,
	// surfaced on /healthz) but never unwinds the install: serving hot swaps
	// must keep working when the disk does not.
	r.persist(l)
	return e.version, nil
}
