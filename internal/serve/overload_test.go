package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobiledl/internal/leakcheck"
	"mobiledl/internal/metrics"
	"mobiledl/internal/nn"
	"mobiledl/internal/tensor"
)

// gateExec blocks every exec call on the gate channel and records the rows
// it actually computed, so tests can prove a pruned request never reached
// the backend.
type gateExec struct {
	gate chan struct{}
	mu   sync.Mutex
	rows []float64 // first feature of every computed row
}

func newGateExec() *gateExec { return &gateExec{gate: make(chan struct{})} }

func (g *gateExec) run(_ context.Context, batch *tensor.Matrix, _ RequestOptions) ([]Result, error) {
	<-g.gate
	g.mu.Lock()
	for i := 0; i < batch.Rows(); i++ {
		g.rows = append(g.rows, batch.At(i, 0))
	}
	g.mu.Unlock()
	out := make([]Result, batch.Rows())
	for i := range out {
		out[i] = Result{Class: int(batch.At(i, 0))}
	}
	return out, nil
}

func (g *gateExec) computed() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]float64(nil), g.rows...)
}

// waitInflight polls until the batcher has admitted want requests.
func waitInflight(t *testing.T, b *Batcher, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Inflight() != want {
		if time.Now().After(deadline) {
			t.Fatalf("inflight stuck at %d, want %d", b.Inflight(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestSubmitExpiredInQueueNeverExecutes is the headline-bug regression: a
// queued request whose context deadline passes is answered with
// context.DeadlineExceeded and the backend never computes it.
func TestSubmitExpiredInQueueNeverExecutes(t *testing.T) {
	exec := newGateExec()
	stats := newCollector()
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1}, exec.run, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Occupy the single worker with a request that blocks on the gate.
	first := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), []float64{1}, RequestOptions{})
		first <- err
	}()
	waitInflight(t, b, 1)

	// Queue a second request with a deadline that expires while it waits.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := b.Submit(ctx, []float64{2}, RequestOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired queued submit: %v, want context.DeadlineExceeded", err)
	}

	// Unblock the worker; it serves the first request and prunes the second.
	close(exec.gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	waitInflight(t, b, 0)
	for _, row := range exec.computed() {
		if row == 2 {
			t.Fatal("backend executed a request whose caller had already timed out")
		}
	}
	if got := stats.expired.Load(); got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
}

// TestSubmitOverloadShedsFast pins admission control: past MaxInflight,
// Submit fails immediately with ErrOverloaded instead of queueing.
func TestSubmitOverloadShedsFast(t *testing.T) {
	exec := newGateExec()
	stats := newCollector()
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1, MaxInflight: 2}, exec.run, stats)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := b.Submit(context.Background(), []float64{float64(i)}, RequestOptions{})
			done <- err
		}(i)
	}
	waitInflight(t, b, 2)

	start := time.Now()
	_, err = b.Submit(context.Background(), []float64{9}, RequestOptions{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past the inflight cap: %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shed took %v, want fail-fast", elapsed)
	}
	if got := stats.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	close(exec.gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubmitQueueFullSheds saturates the admission queue itself (tiny
// QueueCap, stalled collector) and expects ErrOverloaded.
func TestSubmitQueueFullSheds(t *testing.T) {
	exec := newGateExec()
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1, QueueCap: 1}, exec.run, newCollector())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Capacity with Workers=1, QueueCap=1, MaxBatch=1: one executing, one
	// batch buffered, one held by the stalled collector, one in the queue.
	// The first three must clear the queue (the collector picks them up)
	// before the next submit, so the sequencing is deterministic.
	done := make(chan error, 4)
	submit := func(i int) {
		go func() {
			_, err := b.Submit(context.Background(), []float64{float64(i)}, RequestOptions{})
			done <- err
		}()
		waitInflight(t, b, int64(i+1))
	}
	for i := 0; i < 3; i++ {
		submit(i)
		deadline := time.Now().Add(5 * time.Second)
		for b.QueueDepth() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("queue never drained after submit %d", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	submit(3) // sits in the queue: the collector is stalled on a full batch channel
	if _, err := b.Submit(context.Background(), []float64{9}, RequestOptions{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit into a full queue: %v, want ErrOverloaded", err)
	}
	close(exec.gate)
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllAbandonedGroupCancelsBackend proves the group-context contract:
// when every submitter in a batch gives up, the backend's context fires so
// a cancellation-honoring backend stops computing.
func TestAllAbandonedGroupCancelsBackend(t *testing.T) {
	execDone := make(chan error, 1)
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond, Workers: 1},
		func(ctx context.Context, m *tensor.Matrix, _ RequestOptions) ([]Result, error) {
			select {
			case <-ctx.Done():
				execDone <- ctx.Err()
				return nil, ctx.Err()
			case <-time.After(10 * time.Second):
				execDone <- nil
				return make([]Result, m.Rows()), nil
			}
		}, newCollector())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(ctx, []float64{1}, RequestOptions{}); !errors.Is(err, context.Canceled) {
				t.Errorf("abandoned submit: %v, want context.Canceled", err)
			}
		}()
	}
	waitInflight(t, b, 2)
	time.Sleep(5 * time.Millisecond) // let the batch reach the backend
	cancel()
	wg.Wait()
	select {
	case err := <-execDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("backend finished with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backend never observed the all-abandoned cancellation")
	}
}

// TestCloseDrainsQueuedRequests pins graceful shutdown: requests admitted
// before Close are answered, not dropped.
func TestCloseDrainsQueuedRequests(t *testing.T) {
	leakcheck.Check(t)
	// The exec ignores its context (like the shipped backends), so Close
	// must drain every queued request to completion. The gate holds the
	// workers until Close has begun, so all n requests are provably still
	// in flight when shutdown starts.
	exec := newGateExec()
	b, err := NewBatcher(1, BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond, Workers: 2}, exec.run, newCollector())
	if err != nil {
		t.Fatal(err)
	}

	const n = 32
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res, err := b.Submit(context.Background(), []float64{float64(i)}, RequestOptions{})
			if err == nil && res.Class != i {
				err = errors.New("wrong answer after drain")
			}
			done <- err
		}(i)
	}
	waitInflight(t, b, n)
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	close(exec.gate)
	<-closed
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("request dropped during graceful shutdown: %v", err)
		}
	}
	if got := b.Inflight(); got != 0 {
		t.Fatalf("inflight after drain = %d, want 0", got)
	}
}

// blockBackend is a Backend whose RunBatch blocks until released — the
// server-level stand-in for a saturated model.
type blockBackend struct {
	gate chan struct{}
	dim  int
}

func (bb *blockBackend) Describe() BackendInfo {
	return BackendInfo{Kind: "dense", Algorithm: "block", InputDim: bb.dim, Classes: 2}
}
func (bb *blockBackend) InputDim() int { return bb.dim }
func (bb *blockBackend) RunBatch(ctx context.Context, _ *ExecEnv, batch *tensor.Matrix, _ RequestOptions) (BatchResult, error) {
	select {
	case <-bb.gate:
	case <-ctx.Done():
		return BatchResult{}, ctx.Err()
	}
	return BatchResult{Results: make([]Result, batch.Rows())}, nil
}
func (bb *blockBackend) Params() []*nn.Param { return nil }
func (bb *blockBackend) Close() error        { return nil }

// TestServerOverloadIs429AndMetered drives the whole stack: a saturated
// runtime sheds with HTTP 429 + Retry-After, and /metrics reports the shed
// count.
func TestServerOverloadIs429AndMetered(t *testing.T) {
	reg := NewRegistry()
	bb := &blockBackend{gate: make(chan struct{}), dim: 2}
	if _, err := reg.Install("block", bb); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "block",
		Batch: BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1, MaxInflight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Add(rt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body := func() []byte {
		b, _ := json.Marshal(PredictRequest{Model: "block", Features: [][]float64{{1, 2}}})
		return b
	}()

	// Fill the single admission slot, then expect the next request to shed.
	firstDone := make(chan struct{})
	go func() {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		close(firstDone)
	}()
	waitInflight(t, rt.batcher, 1)

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated predict returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(bb.gate)
	<-firstDone

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := metrics.ParseProm(string(text))
	if err != nil {
		t.Fatalf("/metrics payload unparseable: %v\n%s", err, text)
	}
	shed, ok := scrape.Value("mobiledl_requests_shed_total", metrics.Label{Name: "model", Value: "block"})
	if !ok || shed != 1 {
		t.Fatalf("/metrics shed count = %v (found %v), want 1:\n%s", shed, ok, text)
	}
	if scrape.Type("mobiledl_request_latency_ms") != "histogram" {
		t.Fatal("/metrics missing the latency histogram family")
	}
	srv.Close()
}

// TestServerTimeoutIs504 pins the deadline budget: a request whose
// timeout_ms expires before the backend answers returns 504 Gateway
// Timeout.
func TestServerTimeoutIs504(t *testing.T) {
	reg := NewRegistry()
	bb := &blockBackend{gate: make(chan struct{}), dim: 2}
	if _, err := reg.Install("block", bb); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "block",
		Batch: BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Add(rt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(bb.gate); srv.Close() })

	body, _ := json.Marshal(PredictRequest{Model: "block", Features: [][]float64{{1, 2}}, TimeoutMs: 10})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired predict returned %d, want 504", resp.StatusCode)
	}
}

// TestServerNegativeTimeoutIs400 rejects a nonsensical budget up front.
func TestServerNegativeTimeoutIs400(t *testing.T) {
	ts, _ := newErrorTestServer(t)
	body, _ := json.Marshal(PredictRequest{Model: "mlp", Features: [][]float64{make([]float64, 8)}, TimeoutMs: -5})
	resp, _ := postPredict(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms returned %d, want 400", resp.StatusCode)
	}
}
