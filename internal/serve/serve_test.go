package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
)

func newPlainRuntime(t *testing.T, reg *Registry, name string, batch BatcherConfig) *Runtime {
	t.Helper()
	rt, err := NewRuntime(RuntimeConfig{Registry: reg, Model: name, Batch: batch})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRuntimeConcurrentLoadWithHotSwap(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("mlp", mlpFactory(1)); err != nil {
		t.Fatal(err)
	}
	blob, err := nn.EncodeWeights(mustDense(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("mlp", bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	rt := newPlainRuntime(t, reg, "mlp", BatcherConfig{MaxBatch: 16, MaxDelay: time.Millisecond})

	// >= 64 concurrent in-flight requests while the model hot-swaps twice.
	const clients, perClient = 64, 6
	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for k := 0; k < perClient; k++ {
				feats := make([]float64, 8)
				for j := range feats {
					feats[j] = rng.NormFloat64()
				}
				if _, err := rt.Predict(context.Background(), feats); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	swapped := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := 0
		for i := 0; i < 2; i++ {
			time.Sleep(time.Millisecond)
			b, err := NewDenseBackend(mlpNet(int64(20 + i)))
			if err != nil {
				errCh <- err
				return
			}
			v, err := reg.Install("mlp", b)
			if err != nil {
				errCh <- err
				return
			}
			last = v
		}
		swapped <- last
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if v := <-swapped; v != 3 {
		t.Fatalf("expected 2 swaps on top of v1, got final version %d", v)
	}

	st := rt.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("stats counted %d requests, want %d", st.Requests, clients*perClient)
	}
	if st.Batches == 0 || st.BatchOccupancy < 1 {
		t.Fatalf("implausible batching stats: %+v", st)
	}
	if st.LatencyMs.P50 <= 0 || st.LatencyMs.P99 < st.LatencyMs.P50 {
		t.Fatalf("implausible latency summary: %+v", st.LatencyMs)
	}
}

func TestCascadeEarlyExitShortCircuit(t *testing.T) {
	mk := func(threshold float64) *Runtime {
		ee, err := newCascade(5)
		if err != nil {
			t.Fatal(err)
		}
		ee.Threshold = threshold
		b, err := NewCascadeBackend(ee)
		if err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry()
		if _, err := reg.Install("cascade", b); err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(RuntimeConfig{
			Registry: reg, Model: "cascade",
			Batch: BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt
	}

	feats := []float64{1, -1, 0.5, 0.25, -0.5, 2, -2, 1}

	// Threshold 0: every row clears the exit, the whole batch short-circuits
	// on-device — no offloads, no simulated traffic.
	rt := mk(0)
	res, err := rt.Predict(context.Background(), feats)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Local || res.SimNetMs != 0 {
		t.Fatalf("threshold 0 should exit locally with no traffic: %+v", res)
	}
	if res.Placement != mobile.PlaceSplit {
		t.Fatalf("cascade on WiFi should serve under the split placement, got %s", res.Placement)
	}
	st := rt.Stats()
	if st.Offloads != 0 || st.LocalExitFraction != 1 {
		t.Fatalf("short-circuited batch still offloaded: %+v", st)
	}

	// Threshold 1: softmax confidence is strictly below 1, so every row
	// offloads through the perturbed cloud half and pays the uplink.
	rt = mk(1)
	res, err = rt.Predict(context.Background(), feats)
	if err != nil {
		t.Fatal(err)
	}
	if res.Local || res.SimNetMs <= 0 {
		t.Fatalf("threshold 1 should offload with simulated traffic: %+v", res)
	}
	if got := rt.Stats(); got.LocalExits != 0 || got.Offloads != 1 {
		t.Fatalf("offload accounting: %+v", got)
	}
}

func TestCascadeOfflineFallsBackToLocal(t *testing.T) {
	ee, err := newCascade(5)
	if err != nil {
		t.Fatal(err)
	}
	ee.Threshold = 1 // would offload everything if a network existed
	b, err := NewCascadeBackend(ee)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Install("cascade", b); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "cascade",
		Batch: BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond},
		Net:   mobile.OfflineNetwork(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Predict(context.Background(), []float64{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 1 means the exit never answers (Local=false), but offline
	// the cloud half runs on-device: local placement, zero traffic.
	if res.Placement != mobile.PlaceLocal || res.Local || res.SimNetMs != 0 {
		t.Fatalf("offline cascade must run fully on-device: %+v", res)
	}
	if st := rt.Stats(); st.Offloads != 0 || st.LocalExits != 0 {
		t.Fatalf("on-device rows must count as neither exits nor offloads: %+v", st)
	}
}

// TestConcurrentWorkersShareModel pins down that inference on a shared model
// is race-free: MaxBatch 1 with a wide worker pool maximizes overlapping
// Forward calls on the same layers (go test -race is the arbiter).
func TestConcurrentWorkersShareModel(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 13)); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "mlp",
		Batch: BatcherConfig{MaxBatch: 1, MaxDelay: time.Millisecond, Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var wg sync.WaitGroup
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			feats := make([]float64, 8)
			feats[c%8] = 1
			for k := 0; k < 8; k++ {
				if _, err := rt.Predict(context.Background(), feats); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestPooledBuffersUnderConcurrentPredict drives 64 concurrent Predict
// callers through a cascade runtime, the configuration that exercises every
// pooled buffer in the stack (batch assembly, early-exit softmax scratch,
// representation and offload gathers). Each caller submits a fixed feature
// row and pins the class it receives on the first call: if recycled buffers
// ever leaked between concurrent batches, rows would cross-contaminate and
// a caller would see its answer flip. Run under -race via `make race`.
func TestPooledBuffersUnderConcurrentPredict(t *testing.T) {
	reg := NewRegistry()
	ee, err := newCascade(5)
	if err != nil {
		t.Fatal(err)
	}
	// Mid threshold: some rows exit locally, some offload — both gather
	// paths run. Zero out the perturbation so offloaded answers are
	// deterministic per row.
	ee.Threshold = 0.5
	ee.Pipeline.NullRate = 0
	ee.Pipeline.NoiseSigma = 0
	b, err := NewCascadeBackend(ee)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("cascade", b); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "cascade",
		Batch: BatcherConfig{MaxBatch: 16, MaxDelay: 200 * time.Microsecond, Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const clients, perClient = 64, 25
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			feats := make([]float64, 8)
			for j := range feats {
				feats[j] = rng.NormFloat64()
			}
			want := -1
			for k := 0; k < perClient; k++ {
				res, err := rt.Predict(context.Background(), feats)
				if err != nil {
					errCh <- err
					return
				}
				if want == -1 {
					want = res.Class
				} else if res.Class != want {
					errCh <- errResultFlip
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

var errResultFlip = errors.New("pooled buffers leaked between batches: same features produced different classes")

func TestHotSwapRejectsInterfaceChange(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Install("m", mustDense(t, 1)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	narrow, err := NewDenseBackend(nn.NewSequential(nn.NewDense(rng, 4, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Install("m", narrow); err == nil {
		t.Fatal("swap changing input width must be rejected")
	}
	if got, _ := reg.Get("m"); got.Version != 1 {
		t.Fatalf("rejected swap must leave version 1 current, got v%d", got.Version)
	}
}

func TestPlainPlacementFollowsCostModel(t *testing.T) {
	// A big model on a slow device offloads to the cloud; verify the
	// executor both picks that placement and bills the simulated transfer.
	rng := rand.New(rand.NewSource(2))
	big, err := NewDenseBackend(nn.NewSequential(
		nn.NewDense(rng, 8, 512), nn.NewReLU(),
		nn.NewDense(rng, 512, 512), nn.NewReLU(),
		nn.NewDense(rng, 512, 4),
	))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Install("big", big); err != nil {
		t.Fatal(err)
	}
	slow := mobile.MidrangePhone()
	slow.MACsPerSec = 1e6 // pathological device: cloud always wins
	rt, err := NewRuntime(RuntimeConfig{
		Registry: reg, Model: "big",
		Batch:  BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond},
		Device: slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	res, err := rt.Predict(context.Background(), make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement != mobile.PlaceCloud || res.SimNetMs <= 0 {
		t.Fatalf("slow device should offload to cloud with traffic: %+v", res)
	}
}

func TestServerHTTP(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Install("mlp", mustDense(t, 9)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg)
	rt := newPlainRuntime(t, reg, "mlp", BatcherConfig{MaxBatch: 8, MaxDelay: time.Millisecond})
	srv.Add(rt)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PredictRequest{
		Model:    "mlp",
		Features: [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}, {8, 7, 6, 5, 4, 3, 2, 1}},
	})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Rows) != 2 {
		t.Fatalf("predict response: %+v", pr)
	}
	for _, row := range pr.Rows {
		if row.Class < 0 || row.Class >= 4 || row.ModelVersion != 1 {
			t.Fatalf("bad row: %+v", row)
		}
		if row.Probs != nil {
			t.Fatalf("default request must not carry probabilities: %+v", row)
		}
		if row.BatchSize < 1 {
			t.Fatalf("row missing batch breakdown: %+v", row)
		}
	}

	// Stats reflect the served rows.
	resp4, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	var stats map[string]Stats
	if err := json.NewDecoder(resp4.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["mlp"].Requests != 2 {
		t.Fatalf("stats: %+v", stats["mlp"])
	}

	// Models listing shows the installed version and backend kind.
	resp5, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp5.Body.Close()
	var infos []ModelInfo
	if err := json.NewDecoder(resp5.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "mlp" || infos[0].Version != 1 || infos[0].Kind != "dense" {
		t.Fatalf("models: %+v", infos)
	}
}
