package serve

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"mobiledl/internal/compress"
	"mobiledl/internal/nn"
	"mobiledl/internal/split"
)

// mlpNet builds a fixed small architecture with seeded weights.
func mlpNet(seed int64) *nn.Sequential {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential(
		nn.NewDense(rng, 8, 16), nn.NewReLU(),
		nn.NewDense(rng, 16, 4),
	)
}

// mlpFactory returns a Factory for the fixed architecture; each call yields
// fresh (seeded) weights so loads must come from the blob.
func mlpFactory(seed int64) Factory {
	return func() (Backend, error) { return NewDenseBackend(mlpNet(seed)) }
}

func newCascade(seed int64) (*split.EarlyExit, error) {
	rng := rand.New(rand.NewSource(seed))
	local := nn.NewSequential(nn.NewDense(rng, 8, 6), nn.NewTanh())
	cloud := nn.NewSequential(nn.NewDense(rng, 6, 12), nn.NewReLU(), nn.NewDense(rng, 12, 4))
	exit := nn.NewSequential(nn.NewDense(rng, 6, 4))
	p, err := split.New(split.Config{Local: local, Cloud: cloud, NullRate: 0.1, NoiseSigma: 0.5, Bound: 2})
	if err != nil {
		return nil, err
	}
	return split.NewEarlyExit(p, exit, 0.9)
}

func cascadeFactory(seed int64) Factory {
	return func() (Backend, error) {
		ee, err := newCascade(seed)
		if err != nil {
			return nil, err
		}
		return NewCascadeBackend(ee)
	}
}

func mustDense(t *testing.T, seed int64) *DenseBackend {
	t.Helper()
	b, err := NewDenseBackend(mlpNet(seed))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRegistryInstallWithMetaSurfacesProvenance(t *testing.T) {
	reg := NewRegistry()
	meta := &VersionMeta{Source: "fedserve", Round: 7, Accuracy: 0.91}
	if _, err := reg.InstallWithMeta("m", mustDense(t, 1), meta); err != nil {
		t.Fatal(err)
	}
	l, err := reg.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if l.Meta == nil || *l.Meta != *meta {
		t.Fatalf("Loaded.Meta = %+v, want %+v", l.Meta, meta)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Train == nil || *snap[0].Train != *meta {
		t.Fatalf("Snapshot lost provenance: %+v", snap)
	}
	// A plain Install hot-swap clears the provenance for the new version.
	if _, err := reg.Install("m", mustDense(t, 2)); err != nil {
		t.Fatal(err)
	}
	if l, err = reg.Get("m"); err != nil || l.Meta != nil {
		t.Fatalf("unannotated version kept stale meta: %+v err %v", l.Meta, err)
	}
	// The annotated version stays resolvable (and annotated) in history.
	old, err := reg.GetVersion("m", 1)
	if err != nil || old.Meta == nil || old.Meta.Round != 7 {
		t.Fatalf("historical version lost meta: %+v err %v", old, err)
	}
}

func TestRegistryLoadHotSwapRoundTrip(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("mlp", mlpFactory(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("mlp"); err == nil {
		t.Fatal("Get before Load should fail")
	}

	// Author a "trained" model out of band and serialize it.
	src := mustDense(t, 99)
	blob, err := nn.EncodeWeights(src)
	if err != nil {
		t.Fatal(err)
	}

	v1, err := reg.Load("mlp", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Fatalf("first load: version %d, want 1", v1)
	}
	got, err := reg.Get("mlp")
	if err != nil {
		t.Fatal(err)
	}
	// Loaded weights must equal the source, not the factory seed's.
	srcW := src.Params()[0].Value
	gotW := got.Backend.Params()[0].Value
	if !gotW.Equal(srcW, 0) {
		t.Fatal("loaded weights differ from serialized source")
	}

	// Hot swap: perturb the source, checkpoint, load again.
	src.Params()[0].Value.Fill(0.125)
	blob2, err := nn.EncodeWeights(src)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Load("mlp", bytes.NewReader(blob2))
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("second load: version %d, want 2", v2)
	}
	swapped, err := reg.Get("mlp")
	if err != nil {
		t.Fatal(err)
	}
	if swapped.Backend.Params()[0].Value.At(0, 0) != 0.125 {
		t.Fatal("hot swap did not install new weights")
	}
	// The pre-swap snapshot is immutable and still serves.
	if got.Version != 1 || got.Backend.Params()[0].Value.At(0, 0) == 0.125 {
		t.Fatal("old loaded version was mutated by the swap")
	}

	// Checkpoint of the current version round-trips through Load.
	ck, err := reg.Checkpoint("mlp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("mlp", bytes.NewReader(ck)); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryVersionHistory(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < versionHistory+2; i++ {
		if _, err := reg.Install("m", mustDense(t, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := reg.Get("m")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != versionHistory+2 {
		t.Fatalf("current version %d, want %d", cur.Version, versionHistory+2)
	}
	// Version 0 resolves to current.
	if l, err := reg.GetVersion("m", 0); err != nil || l.Version != cur.Version {
		t.Fatalf("GetVersion 0: %v, v%d", err, l.Version)
	}
	// The last versionHistory versions stay pinned.
	for v := cur.Version - versionHistory + 1; v <= cur.Version; v++ {
		l, err := reg.GetVersion("m", v)
		if err != nil {
			t.Fatalf("retained version %d: %v", v, err)
		}
		if l.Version != v {
			t.Fatalf("pin %d resolved to v%d", v, l.Version)
		}
	}
	// Evicted and never-existed versions are client errors.
	for _, v := range []int{1, cur.Version + 1} {
		if _, err := reg.GetVersion("m", v); !errors.Is(err, ErrRequest) {
			t.Fatalf("version %d: err=%v, want ErrRequest", v, err)
		}
	}
}

func TestRegistryCascadeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("cascade", cascadeFactory(3)); err != nil {
		t.Fatal(err)
	}
	src, err := cascadeFactory(42)()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.SaveWeights(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("cascade", &buf); err != nil {
		t.Fatal(err)
	}
	got, err := reg.Get("cascade")
	if err != nil {
		t.Fatal(err)
	}
	cb, ok := got.Backend.(*CascadeBackend)
	if !ok {
		t.Fatalf("loaded backend is %T, want *CascadeBackend", got.Backend)
	}
	want := src.(*CascadeBackend).Cascade().Exit.Params()[0].Value
	have := cb.Cascade().Exit.Params()[0].Value
	if !have.Equal(want, 0) {
		t.Fatal("cascade exit weights did not round-trip")
	}
	if got.Info.Kind != "cascade" {
		t.Fatalf("cascade kind lost in load: %+v", got.Info)
	}
}

func TestRegistryLoadCompressed(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("mlp", mlpFactory(1)); err != nil {
		t.Fatal(err)
	}
	src := mustDense(t, 7)
	blob, err := nn.EncodeWeights(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := reg.LoadCompressed("mlp", bytes.NewReader(blob),
		compress.PipelineConfig{Sparsity: 0.5, Bits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version %d, want 1", v)
	}
	got, err := reg.Get("mlp")
	if err != nil {
		t.Fatal(err)
	}
	if got.Sizes == nil || got.Sizes.Ratio() <= 1 {
		t.Fatalf("compressed load should record a >1x ratio, got %+v", got.Sizes)
	}
	infos := reg.Snapshot()
	if len(infos) != 1 || !infos[0].Compressed || infos[0].Kind != "dense" {
		t.Fatalf("snapshot: %+v", infos)
	}

	// Cascades refuse compression.
	if err := reg.Register("cascade", cascadeFactory(3)); err != nil {
		t.Fatal(err)
	}
	cs, _ := cascadeFactory(3)()
	var buf bytes.Buffer
	if err := nn.SaveWeights(&buf, cs.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.LoadCompressed("cascade", &buf, compress.PipelineConfig{Sparsity: 0.5, Bits: 4}); !errors.Is(err, ErrServe) {
		t.Fatalf("cascade compression: err=%v, want ErrServe", err)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", nil); !errors.Is(err, ErrServe) {
		t.Fatalf("empty register: %v", err)
	}
	if err := reg.Register("m", mlpFactory(1)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("m", mlpFactory(1)); !errors.Is(err, ErrServe) {
		t.Fatalf("duplicate register: %v", err)
	}
	if _, err := reg.Load("nope", bytes.NewReader(nil)); !errors.Is(err, ErrServe) {
		t.Fatalf("load unknown: %v", err)
	}
	// Wrong-architecture blob fails loudly.
	other, _ := cascadeFactory(1)()
	var buf bytes.Buffer
	if err := nn.SaveWeights(&buf, other.Params()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("m", &buf); err == nil {
		t.Fatal("mismatched architecture should fail to load")
	}
	// Install-only entries have no factory to Load through.
	if _, err := reg.Install("direct", mustDense(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("direct", bytes.NewReader(nil)); !errors.Is(err, ErrServe) {
		t.Fatalf("load without factory: %v", err)
	}
	if _, err := reg.Install("bad", nil); !errors.Is(err, ErrServe) {
		t.Fatalf("install nil backend: %v", err)
	}
}
