package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"mobiledl/internal/baselines"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/split"
	"mobiledl/internal/tensor"
	"mobiledl/internal/trace"
)

// Backend is one servable model family behind the batcher: anything that can
// describe its serving interface and classify a coalesced tensor batch under
// a simulated execution environment. The registry versions Backends, the
// batcher feeds them, and the executor stamps environment-level facts
// (version, simulated sleep) onto their results — so adding a model family
// to the serving system means implementing this interface and nothing else.
type Backend interface {
	// Describe reports the backend's serving interface and cost-model
	// workload. It must be constant for the backend's lifetime.
	Describe() BackendInfo
	// InputDim returns the feature width of one request row (equal to
	// Describe().InputDim; a direct method because the batcher sizes its
	// buffers off it on every construction).
	InputDim() int
	// RunBatch classifies one coalesced batch under the environment env and
	// the request options opts (identical for every row — the batcher groups
	// rows by execution-relevant options before calling). The batch matrix
	// is pooled and only valid for the duration of the call.
	RunBatch(ctx context.Context, env *ExecEnv, batch *tensor.Matrix, opts RequestOptions) (BatchResult, error)
	// Params returns the backend's trainable parameters in a fixed order —
	// the unit the registry's weight-blob hot swap (SaveWeights/LoadWeights)
	// round-trips. Backends without tensor parameters (e.g. tree ensembles)
	// return nil and are Install-only.
	Params() []*nn.Param
	// Close releases backend-held resources. The shipped backends hold
	// none; the seam exists for backends that mmap weights or talk to
	// external processes.
	Close() error
}

// BackendInfo is a backend's self-description: the serving interface the
// registry enforces across hot swaps and the workload the placement cost
// model plans with.
type BackendInfo struct {
	// Kind is the backend family: "dense", "cascade", or "baseline".
	Kind string
	// Algorithm names the concrete model (e.g. "RandomForest") for listings.
	Algorithm string
	// InputDim is the feature width of one request row.
	InputDim int
	// Classes is the output label count.
	Classes int
	// NumParams counts trainable parameters (0 for baseline backends).
	NumParams int
	// Workload is the per-sample placement-planning workload (zero for
	// backends that always run where the runtime runs).
	Workload mobile.Workload
}

// RequestOptions are the per-request serving knobs, threaded from the HTTP
// layer (the "options" object of /v1/predict) through the batcher to the
// backend. The zero value is the default request. Rows whose options differ
// in execution-relevant ways are never coalesced into the same tensor batch.
type RequestOptions struct {
	// TopK asks for the top-K class probabilities per row. 0 (default)
	// returns the argmax class only and skips the softmax entirely.
	TopK int `json:"top_k,omitempty"`
	// Version pins the request to a specific registry version of the model
	// (0 = current). Pinned versions resolve as long as the registry still
	// retains them (see Registry version history).
	Version int `json:"version,omitempty"`
	// NoPerturb disables the cascade's privacy perturbation for offloaded
	// rows — an accuracy-debugging knob; the simulated uplink is still paid.
	// Dense and baseline backends ignore it.
	NoPerturb bool `json:"no_perturb,omitempty"`
}

// Validate rejects malformed options as a client error.
func (o RequestOptions) Validate() error {
	if o.TopK < 0 {
		return fmt.Errorf("%w: top_k %d negative", ErrRequest, o.TopK)
	}
	if o.Version < 0 {
		return fmt.Errorf("%w: version %d negative", ErrRequest, o.Version)
	}
	return nil
}

// BatchResult is a backend's answer for one coalesced batch.
type BatchResult struct {
	// Results holds one entry per batch row, in row order. The backend
	// fills the model-level fields (Class, Probs, Local, Placement,
	// SimNetMs); the executor and batcher stamp the serving-level ones
	// (ModelVersion, BatchSize, QueueMs, ExecMs).
	Results []Result
}

// ExecEnv is the simulated device/cloud/network environment a backend runs
// batches in. One ExecEnv is shared by all workers of a runtime, so its RNG
// access is serialized; the cost-model fields are read-only after
// construction.
type ExecEnv struct {
	Device mobile.Device
	Cloud  mobile.Device
	Net    mobile.Network

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewExecEnv builds an environment, applying defaults for zero values
// (midrange phone, cloud server, WiFi).
func NewExecEnv(device, cloud mobile.Device, net mobile.Network, seed int64) *ExecEnv {
	if device.MACsPerSec == 0 {
		device = mobile.MidrangePhone()
	}
	if cloud.MACsPerSec == 0 {
		cloud = mobile.CloudServer()
	}
	if net.Kind == 0 {
		net = mobile.WiFiNetwork()
	}
	return &ExecEnv{Device: device, Cloud: cloud, Net: net, rng: rand.New(rand.NewSource(seed))}
}

// Plans evaluates all placements for a per-sample workload, feasible-first,
// cheapest-first.
func (env *ExecEnv) Plans(w mobile.Workload) []mobile.PlanCost {
	return mobile.ComparePlacements(env.Device, env.Cloud, env.Net, w)
}

// TransferMs models one row's round trip: upload upBytes, download downBytes
// on the environment's network.
func (env *ExecEnv) TransferMs(upBytes, downBytes int64) (float64, error) {
	up, err := env.Net.TransferMillis(upBytes, true)
	if err != nil {
		return 0, err
	}
	down, err := env.Net.TransferMillis(downBytes, false)
	if err != nil {
		return 0, err
	}
	return up + down, nil
}

// WithRNG runs fn with the environment's RNG under its lock. Backends draw
// randomness (e.g. the cascade perturbation) only through this, keeping
// concurrent workers race-free and runs reproducible per seed.
func (env *ExecEnv) WithRNG(fn func(*rand.Rand) error) error {
	env.rngMu.Lock()
	defer env.rngMu.Unlock()
	return fn(env.rng)
}

// ---------------------------------------------------------------------------
// DenseBackend

// DenseBackend serves any nn.Sequential whole — plain MLPs and the
// reconstructed networks the Deep Compression pipeline emits alike. Per
// batch it runs one forward pass under the cheaper feasible of the local and
// cloud placements, billing the modeled raw-input uplink when the cost model
// sends it to the cloud.
type DenseBackend struct {
	net  *nn.Sequential
	info BackendInfo
}

var _ Backend = (*DenseBackend)(nil)

// NewDenseBackend wraps a network, deriving its serving interface from the
// first and last Dense layers.
func NewDenseBackend(net *nn.Sequential) (*DenseBackend, error) {
	if net == nil {
		return nil, fmt.Errorf("%w: dense backend needs a network", ErrServe)
	}
	in, err := firstDenseIn(net)
	if err != nil {
		return nil, err
	}
	classes, err := lastDenseOut(net)
	if err != nil {
		return nil, err
	}
	return &DenseBackend{
		net: net,
		info: BackendInfo{
			Kind:      "dense",
			Algorithm: "nn.Sequential",
			InputDim:  in,
			Classes:   classes,
			NumParams: nn.NumParams(net.Params()),
			Workload:  mobile.WorkloadFor(net, nil, in, classes, 0),
		},
	}, nil
}

// Net exposes the wrapped network (the registry's compression path rebuilds
// dense backends around pipeline output).
func (b *DenseBackend) Net() *nn.Sequential { return b.net }

// Describe implements Backend.
func (b *DenseBackend) Describe() BackendInfo { return b.info }

// InputDim implements Backend.
func (b *DenseBackend) InputDim() int { return b.info.InputDim }

// Params implements Backend.
func (b *DenseBackend) Params() []*nn.Param { return b.net.Params() }

// Close implements Backend.
func (b *DenseBackend) Close() error { return nil }

// RunBatch implements Backend.
func (b *DenseBackend) RunBatch(ctx context.Context, env *ExecEnv, batch *tensor.Matrix, opts RequestOptions) (BatchResult, error) {
	plan, err := cheapestPlan(env, b.info.Workload, mobile.PlaceLocal, mobile.PlaceCloud)
	if err != nil {
		return BatchResult{}, err
	}
	bl := trace.LogFrom(ctx)
	fw := bl.Begin("dense.forward")
	logits, err := b.net.Forward(batch, false)
	bl.EndErr(fw, err, trace.Str("placement", plan.Placement.String()))
	if err != nil {
		return BatchResult{}, err
	}
	results := resultsFromScores(logits, opts.TopK, true)
	if plan.Placement == mobile.PlaceCloud {
		netMs, err := env.TransferMs(plan.UpBytes, plan.DownBytes)
		if err != nil {
			return BatchResult{}, err
		}
		for i := range results {
			results[i].SimNetMs = netMs
		}
	}
	for i := range results {
		results[i].Placement = plan.Placement
	}
	return BatchResult{Results: results}, nil
}

// ---------------------------------------------------------------------------
// CascadeBackend

// CascadeBackend serves a split/early-exit cascade: the device-side layers
// and exit classifier answer confident rows locally, the rest are perturbed
// (unless the request opts out) and finished by the cloud half over the
// simulated uplink. Each row's Result reports where it exited (Local) and
// what traffic it paid.
type CascadeBackend struct {
	cascade *split.EarlyExit
	info    BackendInfo
}

var _ Backend = (*CascadeBackend)(nil)

// NewCascadeBackend wraps an early-exit cascade.
func NewCascadeBackend(cascade *split.EarlyExit) (*CascadeBackend, error) {
	if cascade == nil {
		return nil, fmt.Errorf("%w: cascade backend needs a cascade", ErrServe)
	}
	p := cascade.Pipeline
	in, err := firstDenseIn(p.Local)
	if err != nil {
		return nil, err
	}
	classes, err := lastDenseOut(p.Cloud)
	if err != nil {
		return nil, err
	}
	full := nn.NewSequential(append(append([]nn.Layer{}, p.Local.Layers()...), p.Cloud.Layers()...)...)
	return &CascadeBackend{
		cascade: cascade,
		info: BackendInfo{
			Kind:      "cascade",
			Algorithm: "split.EarlyExit",
			InputDim:  in,
			Classes:   classes,
			NumParams: nn.NumParams(cascadeParams(cascade)),
			Workload:  mobile.WorkloadFor(full, p.Local, in, classes, p.RepDim(in)),
		},
	}, nil
}

// Cascade exposes the wrapped early-exit cascade.
func (b *CascadeBackend) Cascade() *split.EarlyExit { return b.cascade }

// Describe implements Backend.
func (b *CascadeBackend) Describe() BackendInfo { return b.info }

// InputDim implements Backend.
func (b *CascadeBackend) InputDim() int { return b.info.InputDim }

// Params implements Backend in the fixed order local, cloud, exit.
func (b *CascadeBackend) Params() []*nn.Param { return cascadeParams(b.cascade) }

// Close implements Backend.
func (b *CascadeBackend) Close() error { return nil }

func cascadeParams(c *split.EarlyExit) []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, c.Pipeline.Local.Params()...)
	ps = append(ps, c.Pipeline.Cloud.Params()...)
	ps = append(ps, c.Exit.Params()...)
	return ps
}

// RunBatch implements Backend. Cascades are split deployments by
// construction — the deep half lives in the cloud and the perturbation
// calibration assumes offloading — so they serve under the split placement
// whenever it is feasible and fall back to fully-local execution (e.g.
// offline) otherwise.
func (b *CascadeBackend) RunBatch(ctx context.Context, env *ExecEnv, batch *tensor.Matrix, opts RequestOptions) (BatchResult, error) {
	cascade := b.cascade
	plan, err := choosePlan(env, b.info.Workload, mobile.PlaceSplit, mobile.PlaceLocal)
	if err != nil {
		return BatchResult{}, err
	}
	bl := trace.LogFrom(ctx)
	dev := bl.Begin("cascade.device")
	rep, err := cascade.Pipeline.TransformClean(batch)
	bl.EndErr(dev, err, trace.Num("rows", float64(batch.Rows())))
	if err != nil {
		return BatchResult{}, err
	}
	// rep is freshly produced per batch (TransformClean never aliases its
	// input) and consumed entirely below, so it feeds the pool afterwards —
	// each worker's next batch reuses it instead of allocating.
	defer tensor.Put(rep)
	exitProbs := tensor.Get(rep.Rows(), cascade.ExitClasses())
	defer tensor.Put(exitProbs)
	exit := bl.Begin("cascade.exit")
	preds, offload, err := cascade.ExitLocallyInto(exitProbs, rep)
	bl.EndErr(exit, err,
		trace.Num("local_exits", float64(rep.Rows()-len(offload))),
		trace.Num("offloads", float64(len(offload))))
	if err != nil {
		return BatchResult{}, err
	}
	results := resultsFromProbRows(exitProbs, preds, opts.TopK)
	for i := range results {
		results[i].Local = true
		results[i].Placement = plan.Placement
	}
	if len(offload) == 0 {
		return BatchResult{Results: results}, nil
	}

	// Unconfident rows go through the cloud half. Under the split placement
	// they pay the modeled transfer — and the privacy perturbation, unless
	// the request opted out; under the local placement (e.g. offline) the
	// cloud network runs on-device with neither. Local reports where the row
	// was answered, so offloaded rows set it false either way.
	overNet := plan.Placement != mobile.PlaceLocal
	cloudScores, err := b.cloudFinish(bl, env, rep, offload, overNet && !opts.NoPerturb)
	if err != nil {
		return BatchResult{}, err
	}
	var netMs float64
	if overNet {
		up := bl.Begin("cascade.uplink")
		netMs, err = env.TransferMs(plan.UpBytes, plan.DownBytes)
		bl.EndErr(up, err, trace.Num("sim_net_ms", netMs),
			trace.Num("up_bytes", float64(plan.UpBytes)),
			trace.Num("down_bytes", float64(plan.DownBytes)))
		if err != nil {
			return BatchResult{}, err
		}
	}
	cloudResults := resultsFromScores(cloudScores, opts.TopK, true)
	for k, i := range offload {
		r := cloudResults[k]
		r.Local = false
		r.Placement = plan.Placement
		r.SimNetMs = netMs
		results[i] = r
	}
	return BatchResult{Results: results}, nil
}

// cloudFinish gathers the offloaded rows of rep into a pooled buffer and
// runs the cascade's cloud network over them — perturbed (the split upload
// path) or clean — returning the freshly allocated logits. Only the
// perturbation's RNG draws are serialized; the deep cloud forward pass runs
// concurrently across workers (inference is stateless per the Layer
// contract).
func (b *CascadeBackend) cloudFinish(bl *trace.BatchLog, env *ExecEnv, rep *tensor.Matrix, offload []int, perturb bool) (*tensor.Matrix, error) {
	sub := tensor.Get(len(offload), rep.Cols())
	defer tensor.Put(sub)
	if err := rep.SelectRowsInto(sub, offload); err != nil {
		return nil, err
	}
	in := sub
	if perturb {
		ps := bl.Begin("cascade.perturb")
		var pert *tensor.Matrix
		err := env.WithRNG(func(rng *rand.Rand) error {
			var perr error
			pert, perr = b.cascade.Pipeline.Perturb(rng, sub)
			return perr
		})
		bl.EndErr(ps, err, trace.Num("rows", float64(len(offload))))
		if err != nil {
			return nil, err
		}
		defer tensor.Put(pert)
		in = pert
	}
	cs := bl.Begin("cascade.cloud")
	out, err := b.cascade.Pipeline.Cloud.Forward(in, false)
	bl.EndErr(cs, err, trace.Num("rows", float64(len(offload))))
	return out, err
}

// ---------------------------------------------------------------------------
// BaselineBackend

// BaselineBackend adapts any fitted baselines.Classifier — tree, forest,
// linear, boosting — to the serving seam, so the classical models answer
// through the same registry, batcher, and HTTP path as the neural ones.
// Classical models are orders of magnitude smaller than the networks the
// placement model prices, so they run where the runtime runs: always the
// local placement, no simulated traffic, no tensor parameters (Install-only,
// no weight-blob hot swap).
type BaselineBackend struct {
	clf  baselines.Classifier
	info BackendInfo
}

var _ Backend = (*BaselineBackend)(nil)

// NewBaselineBackend wraps a fitted classifier serving rows of width
// inputDim. Classifiers learn their class count at Fit time, so fitting
// must precede wrapping.
func NewBaselineBackend(clf baselines.Classifier, inputDim int) (*BaselineBackend, error) {
	if clf == nil {
		return nil, fmt.Errorf("%w: baseline backend needs a classifier", ErrServe)
	}
	if inputDim <= 0 {
		return nil, fmt.Errorf("%w: baseline backend input dim %d", ErrServe, inputDim)
	}
	classes := clf.Classes()
	if classes == 0 {
		return nil, fmt.Errorf("%w: classifier %q is not fitted (fit before serving)", ErrServe, clf.Name())
	}
	if err := probeClassifier(clf, inputDim, classes); err != nil {
		return nil, err
	}
	return &BaselineBackend{
		clf: clf,
		info: BackendInfo{
			Kind:      "baseline",
			Algorithm: clf.Name(),
			InputDim:  inputDim,
			Classes:   classes,
		},
	}, nil
}

// Describe implements Backend.
func (b *BaselineBackend) Describe() BackendInfo { return b.info }

// InputDim implements Backend.
func (b *BaselineBackend) InputDim() int { return b.info.InputDim }

// Params implements Backend: baselines carry no tensor parameters.
func (b *BaselineBackend) Params() []*nn.Param { return nil }

// Close implements Backend.
func (b *BaselineBackend) Close() error { return nil }

// probeClassifier classifies one zero row of the declared width, so a
// mismatch between inputDim and the classifier's fitted feature count fails
// at construction. Classifier exposes no feature count, and the tree-based
// models index rows by trained feature id — without this probe a too-narrow
// inputDim passes the batcher's width check and panics a worker at serve
// time instead.
func probeClassifier(clf baselines.Classifier, dim, classes int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: classifier %q cannot classify %d-feature rows: %v",
				ErrServe, clf.Name(), dim, r)
		}
	}()
	probs, perr := clf.PredictBatch(tensor.New(1, dim))
	if perr != nil {
		return fmt.Errorf("%w: classifier %q cannot classify %d-feature rows: %v",
			ErrServe, clf.Name(), dim, perr)
	}
	if probs.Cols() != classes {
		return fmt.Errorf("%w: classifier %q returned %d-class rows, Classes() says %d",
			ErrServe, clf.Name(), probs.Cols(), classes)
	}
	return nil
}

// RunBatch implements Backend.
func (b *BaselineBackend) RunBatch(ctx context.Context, _ *ExecEnv, batch *tensor.Matrix, opts RequestOptions) (BatchResult, error) {
	bl := trace.LogFrom(ctx)
	sp := bl.Begin("baseline.predict")
	probs, err := b.clf.PredictBatch(batch)
	bl.EndErr(sp, err, trace.Str("algorithm", b.info.Algorithm))
	if err != nil {
		return BatchResult{}, err
	}
	results := resultsFromScores(probs, opts.TopK, false)
	for i := range results {
		results[i].Local = true
		results[i].Placement = mobile.PlaceLocal
	}
	return BatchResult{Results: results}, nil
}

// ---------------------------------------------------------------------------
// Shared helpers

// choosePlan returns the first feasible plan among the wanted placements, in
// preference order (the cascade policy: split whenever feasible, local as
// the offline fallback).
func choosePlan(env *ExecEnv, w mobile.Workload, want ...mobile.Placement) (mobile.PlanCost, error) {
	plans := env.Plans(w)
	for _, p := range want {
		for _, plan := range plans {
			if plan.Feasible && plan.Placement == p {
				return plan, nil
			}
		}
	}
	return mobile.PlanCost{}, fmt.Errorf("%w: no feasible placement (network %s)", ErrServe, env.Net.Kind)
}

// cheapestPlan returns the lowest-latency feasible plan among the allowed
// placements (the dense policy: local vs cloud, whichever the cost model
// prices cheaper). Plans arrive feasible-first, cheapest-first.
func cheapestPlan(env *ExecEnv, w mobile.Workload, allowed ...mobile.Placement) (mobile.PlanCost, error) {
	for _, plan := range env.Plans(w) {
		if !plan.Feasible {
			continue
		}
		for _, p := range allowed {
			if plan.Placement == p {
				return plan, nil
			}
		}
	}
	return mobile.PlanCost{}, fmt.Errorf("%w: no feasible placement (network %s)", ErrServe, env.Net.Kind)
}

// resultsFromScores builds per-row Results from a score matrix: the argmax
// class always, plus the top-K probabilities when topK > 0. With
// needSoftmax the scores are logits and are normalized into pooled scratch
// first (skipped entirely at topK == 0, keeping the default path
// allocation-free past the Result slice); otherwise rows are already
// distributions.
func resultsFromScores(scores *tensor.Matrix, topK int, needSoftmax bool) []Result {
	results := make([]Result, scores.Rows())
	if topK <= 0 {
		for i := range results {
			results[i].Class = scores.ArgMaxRow(i)
		}
		return results
	}
	probs := scores
	if needSoftmax {
		probs = tensor.Get(scores.Rows(), scores.Cols())
		defer tensor.Put(probs)
		if err := tensor.SoftmaxInto(probs, scores); err != nil {
			// Shapes match by construction; a failure here is a programmer
			// error surfaced loudly in tests.
			panic(err)
		}
	}
	for i := range results {
		results[i].Class = probs.ArgMaxRow(i)
		results[i].Probs = topKRow(probs.Row(i), topK)
	}
	return results
}

// resultsFromProbRows builds Results from precomputed probabilities and
// predictions (the cascade exit path, where the softmax already ran for the
// confidence check).
func resultsFromProbRows(probs *tensor.Matrix, preds []int, topK int) []Result {
	results := make([]Result, len(preds))
	for i, c := range preds {
		results[i].Class = c
		if topK > 0 {
			results[i].Probs = topKRow(probs.Row(i), topK)
		}
	}
	return results
}

// topKRow selects the k highest-probability classes of one row, descending.
func topKRow(row []float64, k int) []ClassProb {
	if k > len(row) {
		k = len(row)
	}
	out := make([]ClassProb, 0, k)
	taken := make([]bool, len(row))
	for n := 0; n < k; n++ {
		best := -1
		for c, p := range row {
			if taken[c] {
				continue
			}
			if best < 0 || p > row[best] {
				best = c
			}
		}
		taken[best] = true
		out = append(out, ClassProb{Class: best, Prob: row[best]})
	}
	return out
}

// firstDenseIn returns the In of a network's first Dense layer — the
// feature width it serves.
func firstDenseIn(net *nn.Sequential) (int, error) {
	for _, l := range net.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			return d.In(), nil
		}
	}
	return 0, fmt.Errorf("%w: model has no dense layer to infer input width", ErrServe)
}

// lastDenseOut returns the Out of a network's last Dense layer — its class
// count.
func lastDenseOut(net *nn.Sequential) (int, error) {
	classes := 0
	for _, l := range net.Layers() {
		if d, ok := l.(*nn.Dense); ok {
			classes = d.Out()
		}
	}
	if classes == 0 {
		return 0, fmt.Errorf("%w: model has no dense layer to infer class count", ErrServe)
	}
	return classes, nil
}
