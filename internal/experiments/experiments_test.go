package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"arden", "compress", "deepmood", "distill", "dpfed", "fedavg",
		"fig5", "fig6", "lowrank", "pairid", "placement", "selsgd", "table1",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry %v, want %v", got, want)
		}
	}
	for _, n := range want {
		if Describe(n) == "" {
			t.Fatalf("experiment %s has no description", n)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "bogus", Quick); !errors.Is(err, ErrUnknown) {
		t.Fatalf("want ErrUnknown, got %v", err)
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	rows, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Method] = r
		if r.AccSmall < 0 || r.AccSmall > 1 || r.AccLarge < 0 || r.AccLarge > 1 {
			t.Fatalf("row %+v out of range", r)
		}
	}
	// Robust shape checks at Quick scale (the full ordering is reproduced at
	// Full scale by cmd/paperbench and recorded in EXPERIMENTS.md):
	// every method must beat chance, DEEPSERVICE must carry real signal, and
	// identification must not get easier as the population grows.
	chanceSmall := 1.0 / 4
	for name, r := range byName {
		if r.AccSmall <= chanceSmall {
			t.Fatalf("%s accuracy %v at or below chance %v", name, r.AccSmall, chanceSmall)
		}
	}
	ds := byName["DEEPSERVICE"]
	if ds.AccSmall < 2*chanceSmall {
		t.Fatalf("DEEPSERVICE accuracy %v should be well above chance %v", ds.AccSmall, chanceSmall)
	}
	if ds.AccLarge <= 1.0/6 {
		t.Fatalf("DEEPSERVICE at the larger population is at chance: %v", ds.AccLarge)
	}
}

func TestFig5TrendHolds(t *testing.T) {
	points, err := Fig5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 4 {
		t.Fatalf("only %d participants evaluated", len(points))
	}
	// Accuracy should trend up with training sessions: compare bottom vs top
	// halves (points come sorted by session count).
	half := len(points) / 2
	var lo, hi float64
	for i, p := range points {
		if i < half {
			lo += p.Accuracy
		} else {
			hi += p.Accuracy
		}
	}
	lo /= float64(half)
	hi /= float64(len(points) - half)
	if hi < lo-0.05 {
		t.Fatalf("accuracy did not rise with sessions: low-half %v vs high-half %v", lo, hi)
	}
}

func TestSelSGDMoreUploadMoreAccuracy(t *testing.T) {
	points, err := SelSGD(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Upload volume must scale with theta.
	if !(points[0].UpMB < points[1].UpMB && points[1].UpMB < points[2].UpMB) {
		t.Fatalf("upload not monotone in theta: %+v", points)
	}
	// theta=1.0 should not lose to theta=0.01 by much (and usually wins).
	if points[2].Accuracy < points[0].Accuracy-0.1 {
		t.Fatalf("full sharing (%v) lost badly to 1%% sharing (%v)",
			points[2].Accuracy, points[0].Accuracy)
	}
}

func TestFedAvgBeatsFedSGD(t *testing.T) {
	rows, _, err := FedAvgComparison(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	fedSGD, fedAvg := rows[0], rows[1]
	if fedAvg.RoundsToHit < 0 {
		t.Fatal("FedAvg never reached the target")
	}
	if fedSGD.RoundsToHit > 0 && fedAvg.RoundsToHit > fedSGD.RoundsToHit {
		t.Fatalf("FedAvg (%d rounds) should not need more rounds than FedSGD (%d)",
			fedAvg.RoundsToHit, fedSGD.RoundsToHit)
	}
}

func TestDPFedNoiseAccuracyTradeoff(t *testing.T) {
	rows, strong, err := DPFed(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Moderate noise should keep most of the accuracy (the paper's claim).
	if rows[1].Accuracy < rows[0].Accuracy-0.25 {
		t.Fatalf("sigma=0.5 accuracy %v collapsed vs non-private %v",
			rows[1].Accuracy, rows[0].Accuracy)
	}
	// Epsilon must shrink as sigma grows.
	if !(rows[1].Epsilon > rows[2].Epsilon && rows[2].Epsilon > rows[3].Epsilon) {
		t.Fatalf("epsilon not decreasing in sigma: %+v", rows)
	}
	if strong <= rows[2].Epsilon {
		t.Fatalf("strong composition (%v) should exceed the accountant (%v)", strong, rows[2].Epsilon)
	}
}

func TestPlacementShape(t *testing.T) {
	rows, err := Placement(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// 2 models x 3 networks x 3 placements.
	if len(rows) != 18 {
		t.Fatalf("got %d placement rows", len(rows))
	}
	// Offline: only local is feasible and it sorts first.
	for _, r := range rows {
		if r.Network == "offline" && r.Placement != "local" && r.Feasible {
			t.Fatalf("offline %s marked feasible", r.Placement)
		}
	}
	// Deep model on wifi: best (first listed for that group) should be a
	// remote placement.
	for i, r := range rows {
		if r.Model == "deep-cnn (5 GMAC)" && r.Network == "wifi" {
			if r.Placement == "local" {
				t.Fatalf("deep model on wifi: local listed first (row %d)", i)
			}
			break
		}
	}
}

func TestArdenNoisyTrainingWins(t *testing.T) {
	rows, err := Arden(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Across the perturbed settings, noisy training must win somewhere and
	// must not lose on average (individual settings are noisy at Quick scale).
	var cleanSum, noisySum float64
	wins := 0
	perturbed := 0
	for _, r := range rows {
		if r.Sigma == 0 && r.NullRate == 0 {
			continue
		}
		perturbed++
		cleanSum += r.CleanAcc
		noisySum += r.NoisyAcc
		if r.NoisyAcc > r.CleanAcc {
			wins++
		}
	}
	if wins == 0 {
		t.Fatalf("noisy training never beat clean training: %+v", rows)
	}
	if noisySum < cleanSum-0.02*float64(perturbed) {
		t.Fatalf("noisy training worse on average: %v vs %v", noisySum/float64(perturbed), cleanSum/float64(perturbed))
	}
	// Payload must shrink vs raw input.
	if rows[len(rows)-1].PayloadCut <= 1 {
		t.Fatalf("payload cut %v, want > 1", rows[len(rows)-1].PayloadCut)
	}
	// Epsilon present whenever sigma > 0.
	for _, r := range rows {
		if r.Sigma > 0 && r.Epsilon < 0 {
			t.Fatalf("missing epsilon for sigma %v", r.Sigma)
		}
	}
}

func TestCompressionTradeoff(t *testing.T) {
	rows, err := Compression(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Ratio must grow with aggressiveness.
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio <= rows[i-1].Ratio {
			t.Fatalf("ratio not increasing: %+v", rows)
		}
	}
	// Mild compression should be near-lossless.
	if rows[0].CompAcc < rows[0].BaseAcc-0.05 {
		t.Fatalf("mild compression lost too much: %v -> %v", rows[0].BaseAcc, rows[0].CompAcc)
	}
}

func TestLowRankTradeoff(t *testing.T) {
	rows, err := LowRank(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ParamsAfter > r.ParamsBefore {
			t.Fatalf("factorization grew the model: %+v", r)
		}
		// Aggressive ranks must save for real; gentle ranks may legitimately
		// skip layers where the bias overhead would erase the savings.
		if r.RankFraction <= 0.5 && r.ParamsAfter >= r.ParamsBefore {
			t.Fatalf("rank fraction %v saved nothing: %+v", r.RankFraction, r)
		}
	}
	// Gentle truncation near-lossless.
	if rows[0].FactoredAcc < rows[0].BaseAcc-0.05 {
		t.Fatalf("rank 0.75 lost too much: %v -> %v", rows[0].BaseAcc, rows[0].FactoredAcc)
	}
}

func TestDistillationHelps(t *testing.T) {
	rows, err := Distillation(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// For the smallest student, distillation should not hurt (usually helps).
	last := rows[len(rows)-1]
	if last.DistilledAcc < last.PlainAcc-0.05 {
		t.Fatalf("distillation hurt the small student: plain %v vs distilled %v",
			last.PlainAcc, last.DistilledAcc)
	}
}

func TestDeepMoodBeatsShallow(t *testing.T) {
	rows, err := DeepMoodComparison(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DeepMoodRow{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	best := 0.0
	for _, fus := range []string{"DeepMood-fc", "DeepMood-fm", "DeepMood-mvm"} {
		if byName[fus].Accuracy > best {
			best = byName[fus].Accuracy
		}
	}
	// Robust shape at Quick scale: every method must carry signal and the
	// DeepMood family must reach high session-level accuracy (the paper's
	// ~90% feasibility claim). The full DeepMood-vs-XGBoost ordering does not
	// transfer to this synthetic corpus — see EXPERIMENTS.md (E12 caveat).
	for name, r := range byName {
		if r.Accuracy <= 0.5 {
			t.Fatalf("%s accuracy %v at or below chance", name, r.Accuracy)
		}
	}
	if best < 0.75 {
		t.Fatalf("best DeepMood accuracy %v, want >= 0.75", best)
	}
}

func TestPairIDRuns(t *testing.T) {
	res, err := PairID(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 6 { // C(4,2)
		t.Fatalf("pairs %d, want 6", res.Pairs)
	}
	if res.MeanAccuracy < 0.6 {
		t.Fatalf("mean pairwise accuracy %v", res.MeanAccuracy)
	}
}

func TestRunnersProduceOutput(t *testing.T) {
	// Smoke-run the cheap printable runners end to end.
	for _, name := range []string{"fig6", "placement"} {
		var buf bytes.Buffer
		if err := Run(&buf, name, Quick); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "Paper") {
			t.Fatalf("%s output missing paper reference:\n%s", name, buf.String())
		}
	}
}
