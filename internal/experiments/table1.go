package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mobiledl/internal/baselines"
	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/deepservice"
	"mobiledl/internal/metrics"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
)

func init() {
	register("table1", "Table I: DEEPSERVICE vs classical baselines, N-way user identification", runTable1)
	register("pairid", "IV-B claim: mean pairwise (binary) user identification accuracy/F1", runPairID)
}

// Table1Row is one method's results at the two population sizes.
type Table1Row struct {
	Method            string
	AccSmall, F1Small float64
	AccLarge, F1Large float64
}

// table1Config bundles the workload knobs per scale.
type table1Config struct {
	smallUsers, largeUsers int
	sessionsPerUser        int
	dlEpochs               int
	hidden                 int
}

func table1Scale(scale Scale) table1Config {
	if scale == Full {
		return table1Config{smallUsers: 10, largeUsers: 26, sessionsPerUser: 40, dlEpochs: 20, hidden: 16}
	}
	return table1Config{smallUsers: 4, largeUsers: 6, sessionsPerUser: 24, dlEpochs: 6, hidden: 10}
}

// Table1 runs E1 and returns one row per method.
func Table1(scale Scale) ([]Table1Row, error) {
	cfg := table1Scale(scale)
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        cfg.largeUsers,
		SessionsPerUser: cfg.sessionsPerUser,
		MoodEffect:      0.3,
		Seed:            101,
	})
	if err != nil {
		return nil, err
	}

	methods := []string{"LR", "SVM", "Decision Tree", "RandomForest", "XGBoost", "DEEPSERVICE"}
	results := make(map[string][2]metrics.Report, len(methods))

	for i, users := range []int{cfg.smallUsers, cfg.largeUsers} {
		sessions := data.FilterUsers(corpus.Sessions, users)
		rng := rand.New(rand.NewSource(int64(200 + i)))
		train, test, err := data.SplitSessions(rng, sessions, 0.8)
		if err != nil {
			return nil, err
		}

		// Classical baselines on flattened summary features.
		trX, trY, err := data.FeatureMatrix(train, true)
		if err != nil {
			return nil, err
		}
		teX, teY, err := data.FeatureMatrix(test, true)
		if err != nil {
			return nil, err
		}
		scaler := data.FitScaler(trX)
		trXs := scaler.Transform(trX)
		teXs := scaler.Transform(teX)

		for _, clf := range []baselines.Classifier{
			baselines.NewLogisticRegression(),
			baselines.NewLinearSVM(),
			baselines.NewDecisionTree(),
			baselines.NewRandomForest(),
			baselines.NewGradientBoosting(),
		} {
			if err := clf.Fit(trXs, trY, users); err != nil {
				return nil, fmt.Errorf("%s fit: %w", clf.Name(), err)
			}
			preds, err := clf.Predict(teXs)
			if err != nil {
				return nil, err
			}
			rep, err := metrics.Evaluate(preds, teY, users)
			if err != nil {
				return nil, err
			}
			pair := results[clf.Name()]
			pair[i] = rep
			results[clf.Name()] = pair
		}

		// DEEPSERVICE on raw sequences.
		id, err := deepservice.New(deepservice.Config{
			NumUsers: users,
			Hidden:   cfg.hidden,
			Fusion:   deepmood.FusionFC,
			Seed:     11,
		})
		if err != nil {
			return nil, err
		}
		if _, err := id.Train(deepmood.NormalizeAll(train), deepmood.TrainConfig{
			Epochs:    cfg.dlEpochs,
			BatchSize: 8,
			Optimizer: opt.NewAdam(0.01),
			Rng:       rng,
		}); err != nil {
			return nil, err
		}
		rep, err := id.Evaluate(deepmood.NormalizeAll(test))
		if err != nil {
			return nil, err
		}
		pair := results["DEEPSERVICE"]
		pair[i] = rep
		results["DEEPSERVICE"] = pair
	}

	rows := make([]Table1Row, 0, len(methods))
	for _, m := range methods {
		pair := results[m]
		rows = append(rows, Table1Row{
			Method:   m,
			AccSmall: pair[0].Accuracy, F1Small: pair[0].F1,
			AccLarge: pair[1].Accuracy, F1Large: pair[1].F1,
		})
	}
	return rows, nil
}

func runTable1(w io.Writer, scale Scale) error {
	cfg := table1Scale(scale)
	rows, err := Table1(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-15s %10s %10s %10s %10s\n", "Method",
		fmt.Sprintf("Acc(%d)", cfg.smallUsers), fmt.Sprintf("F1(%d)", cfg.smallUsers),
		fmt.Sprintf("Acc(%d)", cfg.largeUsers), fmt.Sprintf("F1(%d)", cfg.largeUsers))
	for _, r := range rows {
		fmt.Fprintf(w, "%-15s %10s %10s %10s %10s\n",
			r.Method, pct(r.AccSmall), pct(r.F1Small), pct(r.AccLarge), pct(r.F1Large))
	}
	fmt.Fprintln(w, "\nPaper (Table I, 10/26 users): LR 44.25/27.44, SVM 44.39/30.33, DT 53.50/43.37,")
	fmt.Fprintln(w, "RF 77.05/67.87, XGBoost 85.14/79.48, DEEPSERVICE 87.35/82.73 (accuracy %).")
	return nil
}

// PairIDResult is the E13 outcome.
type PairIDResult struct {
	Pairs        int
	MeanAccuracy float64
	MeanF1       float64
}

// PairID runs the pairwise identification protocol of Section IV-B.
func PairID(scale Scale) (PairIDResult, error) {
	users := 4
	sessions := 24
	epochs := 6
	if scale == Full {
		users = 6
		sessions = 30
		epochs = 15
	}
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: sessions,
		MoodEffect:      0.3,
		Seed:            301,
	})
	if err != nil {
		return PairIDResult{}, err
	}
	ids := make([]int, users)
	for i := range ids {
		ids[i] = i
	}
	results, err := deepservice.EvaluatePairs(corpus.Sessions, ids, deepservice.PairwiseConfig{
		Hidden:    8,
		Fusion:    deepmood.FusionFC,
		Epochs:    epochs,
		BatchSize: 8,
		Seed:      13,
	}, func() nn.Optimizer { return opt.NewAdam(0.01) })
	if err != nil {
		return PairIDResult{}, err
	}
	acc, f1 := deepservice.MeanPairMetrics(results)
	return PairIDResult{Pairs: len(results), MeanAccuracy: acc, MeanF1: f1}, nil
}

func runPairID(w io.Writer, scale Scale) error {
	res, err := PairID(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pairs evaluated: %d\n", res.Pairs)
	fmt.Fprintf(w, "mean pairwise accuracy: %s   mean pairwise F1: %s\n",
		pct(res.MeanAccuracy), pct(res.MeanF1))
	fmt.Fprintln(w, "\nPaper (IV-B): 99.1% accuracy / 98.97% F1 on average between any two users.")
	return nil
}
