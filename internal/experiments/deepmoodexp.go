package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mobiledl/internal/baselines"
	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/metrics"
	"mobiledl/internal/opt"
)

func init() {
	register("deepmood", "IV-A: DeepMood (FC/FM/MVM fusion) vs shallow baselines on mood inference", runDeepMood)
}

// DeepMoodRow is one method's mood-classification accuracy (E12).
type DeepMoodRow struct {
	Method   string
	Accuracy float64
	F1       float64
}

// DeepMoodComparison trains the three fusion variants of DeepMood and all
// shallow baselines on the synthetic mood corpus.
func DeepMoodComparison(scale Scale) ([]DeepMoodRow, error) {
	users := 6
	sessions := 30
	epochs := 8
	if scale == Full {
		users = 12
		sessions = 60
		epochs = 8
	}
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: sessions,
		MoodEffect:      1.0,
		Seed:            1301,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(1302))
	train, test, err := data.SplitSessions(rng, corpus.Sessions, 0.8)
	if err != nil {
		return nil, err
	}

	var rows []DeepMoodRow

	// Shallow baselines on flattened features.
	trX, trY, err := data.FeatureMatrix(train, false)
	if err != nil {
		return nil, err
	}
	teX, teY, err := data.FeatureMatrix(test, false)
	if err != nil {
		return nil, err
	}
	scaler := data.FitScaler(trX)
	trXs, teXs := scaler.Transform(trX), scaler.Transform(teX)
	for _, clf := range []baselines.Classifier{
		baselines.NewLogisticRegression(),
		baselines.NewLinearSVM(),
		baselines.NewRandomForest(),
		baselines.NewGradientBoosting(),
	} {
		if err := clf.Fit(trXs, trY, data.NumMoods); err != nil {
			return nil, err
		}
		preds, err := clf.Predict(teXs)
		if err != nil {
			return nil, err
		}
		rep, err := metrics.Evaluate(preds, teY, data.NumMoods)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DeepMoodRow{Method: clf.Name(), Accuracy: rep.Accuracy, F1: rep.F1})
	}

	// DeepMood with each fusion head.
	trainN := deepmood.NormalizeAll(train)
	testN := deepmood.NormalizeAll(test)
	for _, fus := range []deepmood.FusionKind{deepmood.FusionFC, deepmood.FusionFM, deepmood.FusionMVM} {
		model, err := deepmood.New(deepmood.Config{
			Task:        deepmood.TaskMood,
			Classes:     data.NumMoods,
			Hidden:      12,
			Fusion:      fus,
			FusionUnits: 8,
			Seed:        1303,
		})
		if err != nil {
			return nil, err
		}
		if _, err := model.Train(trainN, deepmood.TrainConfig{
			Epochs:    epochs,
			BatchSize: 8,
			Optimizer: opt.NewAdam(0.01),
			Rng:       rand.New(rand.NewSource(1304)),
		}); err != nil {
			return nil, err
		}
		preds, err := model.PredictAll(testN)
		if err != nil {
			return nil, err
		}
		truth := make([]int, len(testN))
		for i, s := range testN {
			truth[i] = s.Mood
		}
		rep, err := metrics.Evaluate(preds, truth, data.NumMoods)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DeepMoodRow{
			Method:   "DeepMood-" + string(fus),
			Accuracy: rep.Accuracy,
			F1:       rep.F1,
		})
	}
	return rows, nil
}

func runDeepMood(w io.Writer, scale Scale) error {
	rows, err := DeepMoodComparison(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %10s %10s\n", "method", "accuracy", "F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10s %10s\n", r.Method, pct(r.Accuracy), pct(r.F1))
	}
	fmt.Fprintln(w, "\nPaper (IV-A): DeepMood reaches ~90.31% session-level accuracy; it beats the")
	fmt.Fprintln(w, "best shallow ensemble (XGBoost) by ~5.56 points, and plain LR/SVM are a poor")
	fmt.Fprintln(w, "fit for the sequential task.")
	return nil
}
