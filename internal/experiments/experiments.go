// Package experiments contains one runner per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index E1-E13). Each
// runner generates its workload, executes the relevant systems, and renders
// the same rows/series the paper reports. Runners accept a Scale so tests
// and benchmarks can use reduced workloads while cmd/paperbench runs the
// full configuration.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// ErrUnknown reports a request for an unregistered experiment.
var ErrUnknown = errors.New("experiments: unknown experiment")

// Scale selects the workload size.
type Scale int

// Workload scales.
const (
	// Quick shrinks workloads so the whole suite runs in tens of seconds;
	// used by unit tests.
	Quick Scale = iota + 1
	// Full is the configuration cmd/paperbench uses for EXPERIMENTS.md.
	Full
)

// Runner executes one experiment and writes its table to w.
type Runner func(w io.Writer, scale Scale) error

// registry maps experiment ids to runners. Populated by init functions in
// this package's files — acceptable per the style guide as a pluggable
// registry of deterministic constructors.
var registry = map[string]registration{}

type registration struct {
	runner      Runner
	description string
}

func register(name, description string, r Runner) {
	registry[name] = registration{runner: r, description: description}
}

// Run executes the named experiment at the given scale.
func Run(w io.Writer, name string, scale Scale) error {
	reg, ok := registry[name]
	if !ok {
		return fmt.Errorf("%w: %q (try one of %v)", ErrUnknown, name, Names())
	}
	return reg.runner(w, scale)
}

// Names lists registered experiment ids in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	return registry[name].description
}

// RunAll executes every registered experiment.
func RunAll(w io.Writer, scale Scale) error {
	for _, name := range Names() {
		fmt.Fprintf(w, "\n===== %s — %s =====\n", name, Describe(name))
		if err := Run(w, name, scale); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	return nil
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
