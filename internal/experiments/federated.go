package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/federated"
	"mobiledl/internal/nn"
	"mobiledl/internal/privacy"
)

func init() {
	register("selsgd", "Fig. 1 / [16]: distributed selective SGD — accuracy vs upload fraction theta", runSelSGD)
	register("fedavg", "II-B claim: FedAvg vs naive distributed SGD — rounds and bytes to target", runFedAvg)
	register("dpfed", "II-C claim: DP-FedAvg accuracy and epsilon vs noise; accountant vs composition", runDPFed)
}

// fedTask builds the shared federated workload: a synthetic classification
// task sharded over clients with an MLP factory and held-out eval.
func fedTask(scale Scale, clients int, iid bool, seed int64) (federated.ModelFactory, []*data.ClientShard, func(*nn.Sequential) (float64, error), int, error) {
	samples := 600
	if scale == Full {
		samples = 1500
	}
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: samples, Classes: 5, Dim: 10, Seed: seed})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	var shards []*data.ClientShard
	if iid {
		shards, err = data.ShardIID(rng, trX, trY, clients)
	} else {
		shards, err = data.ShardNonIID(rng, trX, trY, clients)
	}
	if err != nil {
		return nil, nil, nil, 0, err
	}
	factory := func() (*nn.Sequential, error) {
		r := rand.New(rand.NewSource(42))
		return nn.NewSequential(
			nn.NewDense(r, 10, 24),
			nn.NewReLU(),
			nn.NewDense(r, 24, 5),
		), nil
	}
	return factory, shards, federated.AccuracyEval(teX, teY), 5, nil
}

// SelSGDPoint is one theta setting's outcome (E4).
type SelSGDPoint struct {
	Theta    float64
	Accuracy float64
	UpMB     float64
}

// SelSGD sweeps the selective-SGD upload fraction.
func SelSGD(scale Scale) ([]SelSGDPoint, error) {
	rounds := 10
	clients := 4
	if scale == Full {
		rounds = 25
		clients = 8
	}
	var points []SelSGDPoint
	for _, theta := range []float64{0.01, 0.1, 1.0} {
		factory, shards, eval, classes, err := fedTask(scale, clients, true, 700)
		if err != nil {
			return nil, err
		}
		_, stats, err := federated.RunSelectiveSGD(factory, shards, classes, federated.SelectiveSGDConfig{
			Rounds:           rounds,
			Theta:            theta,
			DownloadFraction: 1.0,
			LocalEpochs:      1,
			LocalBatch:       16,
			LocalLR:          0.1,
			Seed:             7,
			Eval:             eval,
		})
		if err != nil {
			return nil, err
		}
		final := stats[len(stats)-1]
		points = append(points, SelSGDPoint{
			Theta:    theta,
			Accuracy: final.Accuracy,
			UpMB:     float64(final.CumulativeUpBytes) / 1e6,
		})
	}
	return points, nil
}

func runSelSGD(w io.Writer, scale Scale) error {
	points, err := SelSGD(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %10s %12s\n", "theta", "accuracy", "upload (MB)")
	for _, p := range points {
		fmt.Fprintf(w, "%-8.2f %10s %12.3f\n", p.Theta, pct(p.Accuracy), p.UpMB)
	}
	fmt.Fprintln(w, "\nPaper ([16], Fig. 1 framework): sharing even 10% of updates retains most of")
	fmt.Fprintln(w, "the collaborative accuracy while proportionally cutting upload traffic.")
	return nil
}

// FedAvgRow compares one local-computation setting (E5).
type FedAvgRow struct {
	Name          string
	LocalEpochs   int
	RoundsToHit   int
	MBToHit       float64
	FinalAccuracy float64
}

// FedAvgComparison runs naive distributed SGD (E=1, full batch) against
// FedAvg with increasing local computation on a non-IID sharding.
func FedAvgComparison(scale Scale) ([]FedAvgRow, float64, error) {
	target := 0.85
	maxRounds := 60
	clients := 8
	if scale == Full {
		maxRounds = 150
		clients = 16
	}
	settings := []struct {
		name   string
		epochs int
		batch  int
	}{
		{"FedSGD (E=1, full batch)", 1, 0},
		{"FedAvg (E=5, B=16)", 5, 16},
		{"FedAvg (E=20, B=16)", 20, 16},
	}
	var rows []FedAvgRow
	for _, s := range settings {
		factory, shards, eval, classes, err := fedTask(scale, clients, false, 800)
		if err != nil {
			return nil, 0, err
		}
		_, stats, err := federated.RunFedAvg(factory, shards, classes, federated.FedAvgConfig{
			Rounds:         maxRounds,
			ClientFraction: 1.0,
			LocalEpochs:    s.epochs,
			LocalBatch:     s.batch,
			LocalLR:        0.08,
			Seed:           9,
			Workers:        4,
			Eval:           eval,
			TargetAccuracy: target,
		})
		if err != nil {
			return nil, 0, err
		}
		final := stats[len(stats)-1]
		rows = append(rows, FedAvgRow{
			Name:          s.name,
			LocalEpochs:   s.epochs,
			RoundsToHit:   federated.RoundsToTarget(stats, target),
			MBToHit:       float64(federated.BytesToTarget(stats, target)) / 1e6,
			FinalAccuracy: final.Accuracy,
		})
	}
	return rows, target, nil
}

func runFedAvg(w io.Writer, scale Scale) error {
	rows, target, err := FedAvgComparison(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "target accuracy: %s (non-IID shards)\n\n", pct(target))
	fmt.Fprintf(w, "%-28s %16s %14s %12s\n", "scheme", "rounds to target", "MB to target", "final acc")
	for _, r := range rows {
		rounds := fmt.Sprintf("%d", r.RoundsToHit)
		mb := fmt.Sprintf("%.2f", r.MBToHit)
		if r.RoundsToHit < 0 {
			rounds, mb = "not reached", "-"
		}
		fmt.Fprintf(w, "%-28s %16s %14s %12s\n", r.Name, rounds, mb, pct(r.FinalAccuracy))
	}
	fmt.Fprintln(w, "\nPaper (II-B, [18]): multiple local epochs before upload reach a target with")
	fmt.Fprintln(w, "10-100x less communication than naively distributed (one-step) SGD.")
	return nil
}

// DPFedRow is one noise setting of E6.
type DPFedRow struct {
	Sigma    float64
	Accuracy float64
	Epsilon  float64 // moments accountant, delta=1e-5 (Inf if sigma=0)
}

// DPFed sweeps the DP-FedAvg noise multiplier and reports accuracy and the
// accountant's epsilon, plus the strong-composition epsilon for contrast.
func DPFed(scale Scale) ([]DPFedRow, float64, error) {
	rounds := 15
	clients := 10
	if scale == Full {
		rounds = 40
		clients = 20
	}
	var rows []DPFedRow
	for _, sigma := range []float64{0, 0.5, 1.0, 2.0} {
		factory, shards, eval, classes, err := fedTask(scale, clients, true, 900)
		if err != nil {
			return nil, 0, err
		}
		res, err := privacy.RunDPFedAvg(factory, shards, classes, privacy.DPFedAvgConfig{
			Rounds:      rounds,
			P:           0.5,
			LocalEpochs: 3,
			LocalBatch:  16,
			LocalLR:     0.15,
			Clip:        5.0,
			Sigma:       sigma,
			Seed:        13,
			Eval:        eval,
			EvalEvery:   rounds, // final eval only
		})
		if err != nil {
			return nil, 0, err
		}
		row := DPFedRow{Sigma: sigma, Epsilon: -1}
		for i := len(res.Stats) - 1; i >= 0; i-- {
			if res.Stats[i].Accuracy >= 0 {
				row.Accuracy = res.Stats[i].Accuracy
				break
			}
		}
		if res.Accountant != nil {
			eps, err := res.Accountant.Epsilon(1e-5)
			if err != nil {
				return nil, 0, err
			}
			row.Epsilon = eps
		}
		rows = append(rows, row)
	}
	// Contrast figure: advanced composition at the sigma=1 settings, with the
	// per-round epsilon of the same subsampled Gaussian step
	// (eps0 = q * sqrt(2 ln(1.25/delta)) / sigma).
	eps0 := 0.5 * math.Sqrt(2*math.Log(1.25/1e-5)) / 1.0
	strong, err := privacy.StrongCompositionEpsilon(eps0, rounds, 1e-5)
	if err != nil {
		return nil, 0, err
	}
	return rows, strong, nil
}

func runDPFed(w io.Writer, scale Scale) error {
	rows, strongEps, err := DPFed(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %10s %22s\n", "sigma", "accuracy", "epsilon (delta=1e-5)")
	for _, r := range rows {
		eps := "n/a (no noise)"
		if r.Epsilon >= 0 {
			eps = fmt.Sprintf("%.3f", r.Epsilon)
		}
		fmt.Fprintf(w, "%-8.2f %10s %22s\n", r.Sigma, pct(r.Accuracy), eps)
	}
	fmt.Fprintf(w, "\nstrong-composition epsilon at the same round count (eps0=0.5): %.2f\n", strongEps)
	fmt.Fprintln(w, "\nPaper (II-C, [22]): with clipping + sampling + noisy averaging the model keeps")
	fmt.Fprintln(w, "its accuracy at a user-level DP guarantee, and the moments accountant certifies")
	fmt.Fprintln(w, "a far smaller epsilon than generic composition.")
	return nil
}
