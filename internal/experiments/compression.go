package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mobiledl/internal/compress"
	"mobiledl/internal/data"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
)

func init() {
	register("compress", "III-B ([28]): Deep Compression prune->quantize->Huffman ratio vs accuracy", runCompress)
	register("lowrank", "III-B ([36]): low-rank SVD factorization — params saved vs accuracy", runLowRank)
	register("distill", "III-B ([37]): knowledge distillation — student size vs accuracy", runDistill)
}

// compressionTask trains the reference classifier every compression
// experiment starts from.
func compressionTask(scale Scale) (*nn.Sequential, func() *nn.Sequential, *data.FedBench, error) {
	samples := 500
	epochs := 20
	hidden := 48
	if scale == Full {
		samples = 1500
		epochs = 40
		hidden = 96
	}
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: samples, Classes: 5, Dim: 16, Seed: 1200})
	if err != nil {
		return nil, nil, nil, err
	}
	build := func() *nn.Sequential {
		r := rand.New(rand.NewSource(61))
		return nn.NewSequential(
			nn.NewDense(r, 16, hidden),
			nn.NewReLU(),
			nn.NewDense(r, hidden, hidden/2),
			nn.NewReLU(),
			nn.NewDense(r, hidden/2, 5),
		)
	}
	model := build()
	y, err := nn.OneHot(fb.Labels, 5)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := nn.Train(model, fb.X, y, nn.TrainConfig{
		Epochs: epochs, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
		Loss: nn.NewSoftmaxCrossEntropy(), Rng: rand.New(rand.NewSource(62)),
	}); err != nil {
		return nil, nil, nil, err
	}
	return model, build, fb, nil
}

// CompressRow is one Deep Compression setting (E9).
type CompressRow struct {
	Sparsity float64
	Bits     int
	Ratio    float64
	BaseAcc  float64
	CompAcc  float64
}

// Compression sweeps pruning sparsity and quantization bit width.
func Compression(scale Scale) ([]CompressRow, error) {
	model, _, fb, err := compressionTask(scale)
	if err != nil {
		return nil, err
	}
	baseAcc, err := compress.EvalAccuracy(model, fb.X, fb.Labels)
	if err != nil {
		return nil, err
	}
	settings := []struct {
		sparsity float64
		bits     int
	}{
		{0.5, 8}, {0.7, 5}, {0.9, 4}, {0.95, 3},
	}
	var rows []CompressRow
	for _, s := range settings {
		work, err := compress.CopyModel(model)
		if err != nil {
			return nil, err
		}
		res, err := compress.RunPipeline(work, compress.PipelineConfig{
			Sparsity: s.sparsity, Bits: s.bits, Seed: 63,
		})
		if err != nil {
			return nil, err
		}
		acc, err := compress.EvalAccuracy(res.Model, fb.X, fb.Labels)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CompressRow{
			Sparsity: s.sparsity, Bits: s.bits,
			Ratio: res.Sizes.Ratio(), BaseAcc: baseAcc, CompAcc: acc,
		})
	}
	return rows, nil
}

func runCompress(w io.Writer, scale Scale) error {
	rows, err := Compression(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %6s %12s %12s %14s\n", "sparsity", "bits", "ratio", "base acc", "compressed acc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10.2f %6d %11.1fx %12s %14s\n",
			r.Sparsity, r.Bits, r.Ratio, pct(r.BaseAcc), pct(r.CompAcc))
	}
	fmt.Fprintln(w, "\nPaper (III-B, [28]): pruning + weight-sharing quantization + Huffman coding")
	fmt.Fprintln(w, "compress networks 35-49x with negligible accuracy loss; aggressive settings")
	fmt.Fprintln(w, "trade further size for accuracy.")
	return nil
}

// LowRankRow is one rank-fraction setting (E10).
type LowRankRow struct {
	RankFraction float64
	ParamsBefore int
	ParamsAfter  int
	BaseAcc      float64
	FactoredAcc  float64
}

// LowRank sweeps the SVD rank fraction.
func LowRank(scale Scale) ([]LowRankRow, error) {
	model, _, fb, err := compressionTask(scale)
	if err != nil {
		return nil, err
	}
	baseAcc, err := compress.EvalAccuracy(model, fb.X, fb.Labels)
	if err != nil {
		return nil, err
	}
	var rows []LowRankRow
	for _, frac := range []float64{0.75, 0.5, 0.25, 0.1} {
		work, err := compress.CopyModel(model)
		if err != nil {
			return nil, err
		}
		fm, before, after, err := compress.FactorizeModel(work, frac)
		if err != nil {
			return nil, err
		}
		acc, err := compress.EvalAccuracy(fm, fb.X, fb.Labels)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LowRankRow{
			RankFraction: frac, ParamsBefore: before, ParamsAfter: after,
			BaseAcc: baseAcc, FactoredAcc: acc,
		})
	}
	return rows, nil
}

func runLowRank(w io.Writer, scale Scale) error {
	rows, err := LowRank(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %14s %14s %12s %14s\n", "rank fraction", "params before", "params after", "base acc", "factored acc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14.2f %14d %14d %12s %14s\n",
			r.RankFraction, r.ParamsBefore, r.ParamsAfter, pct(r.BaseAcc), pct(r.FactoredAcc))
	}
	fmt.Fprintln(w, "\nPaper (III-B, [36]): dense/conv layers carry heavy redundancy; moderate rank")
	fmt.Fprintln(w, "truncation saves parameters with little accuracy loss, aggressive ranks degrade.")
	return nil
}

// DistillRow is one student configuration (E11).
type DistillRow struct {
	StudentHidden int
	StudentParams int
	PlainAcc      float64 // trained on hard labels only
	DistilledAcc  float64 // trained with the teacher
	TeacherAcc    float64
	TeacherParams int
}

// Distillation compares plain vs distilled students of shrinking capacity.
func Distillation(scale Scale) ([]DistillRow, error) {
	teacher, _, fb, err := compressionTask(scale)
	if err != nil {
		return nil, err
	}
	teacherAcc, err := compress.EvalAccuracy(teacher, fb.X, fb.Labels)
	if err != nil {
		return nil, err
	}
	teacherParams := nn.NumParams(teacher.Params())
	epochs := 15
	if scale == Full {
		epochs = 30
	}
	var rows []DistillRow
	for _, hidden := range []int{12, 6, 3} {
		newStudent := func(seed int64) *nn.Sequential {
			r := rand.New(rand.NewSource(seed))
			return nn.NewSequential(nn.NewDense(r, 16, hidden), nn.NewReLU(), nn.NewDense(r, hidden, 5))
		}
		// Plain student: hard labels only.
		plain := newStudent(71)
		y, err := nn.OneHot(fb.Labels, 5)
		if err != nil {
			return nil, err
		}
		if _, err := nn.Train(plain, fb.X, y, nn.TrainConfig{
			Epochs: epochs, BatchSize: 32, Optimizer: opt.NewAdam(0.01),
			Loss: nn.NewSoftmaxCrossEntropy(), Rng: rand.New(rand.NewSource(72)),
		}); err != nil {
			return nil, err
		}
		plainAcc, err := compress.EvalAccuracy(plain, fb.X, fb.Labels)
		if err != nil {
			return nil, err
		}
		// Distilled student.
		distilled := newStudent(71)
		if _, err := compress.Distill(teacher, distilled, fb.X, fb.Labels, 5, compress.DistillConfig{
			Epochs: epochs, BatchSize: 32, Temperature: 3, Alpha: 0.7,
			Optimizer: opt.NewAdam(0.01), Seed: 73,
		}); err != nil {
			return nil, err
		}
		distAcc, err := compress.EvalAccuracy(distilled, fb.X, fb.Labels)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DistillRow{
			StudentHidden: hidden,
			StudentParams: nn.NumParams(distilled.Params()),
			PlainAcc:      plainAcc,
			DistilledAcc:  distAcc,
			TeacherAcc:    teacherAcc,
			TeacherParams: teacherParams,
		})
	}
	return rows, nil
}

func runDistill(w io.Writer, scale Scale) error {
	rows, err := Distillation(scale)
	if err != nil {
		return err
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "teacher: %d params, accuracy %s\n\n", rows[0].TeacherParams, pct(rows[0].TeacherAcc))
	}
	fmt.Fprintf(w, "%-16s %10s %12s %14s\n", "student hidden", "params", "plain acc", "distilled acc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16d %10d %12s %14s\n",
			r.StudentHidden, r.StudentParams, pct(r.PlainAcc), pct(r.DistilledAcc))
	}
	fmt.Fprintln(w, "\nPaper (III-B, [37]): a small student mimicking a teacher's softened outputs")
	fmt.Fprintln(w, "retains more accuracy than the same student trained on hard labels alone.")
	return nil
}
