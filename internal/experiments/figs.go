package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"mobiledl/internal/data"
	"mobiledl/internal/deepmood"
	"mobiledl/internal/metrics"
	"mobiledl/internal/opt"
)

func init() {
	register("fig5", "Fig. 5: per-participant mood-prediction accuracy vs training sessions", runFig5)
	register("fig6", "Fig. 6: multi-view feature patterns of the top-5 active users", runFig6)
}

// Fig5Point is one participant in the Fig. 5 scatter: how many sessions they
// contributed to training and the model's accuracy on their test sessions.
type Fig5Point struct {
	Participant   int
	TrainSessions int
	Accuracy      float64
}

// Fig5 reproduces the Fig. 5 experiment: participants contribute widely
// varying session counts; a single DeepMood model is trained on the pooled
// training sessions and evaluated per participant.
func Fig5(scale Scale) ([]Fig5Point, error) {
	participants := 8
	maxSessions := 60
	epochs := 4
	if scale == Full {
		participants = 20
		maxSessions = 120
		epochs = 6
	}

	// Generate per-participant corpora with geometric-ish spread of session
	// counts (some contribute few, some many), mirroring the paper's spread
	// of 0..3000 sessions.
	rng := rand.New(rand.NewSource(401))
	var all []*data.Session
	counts := make([]int, participants)
	for u := 0; u < participants; u++ {
		n := 6 + int(float64(maxSessions-6)*float64(u)/float64(participants-1))
		counts[u] = n
		c, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
			NumUsers:        1,
			SessionsPerUser: n,
			MoodEffect:      0.9,
			Seed:            int64(500 + u),
		})
		if err != nil {
			return nil, err
		}
		for _, s := range c.Sessions {
			s.UserID = u
			all = append(all, s)
		}
	}

	train, test, err := data.SplitSessions(rng, all, 0.75)
	if err != nil {
		return nil, err
	}
	model, err := deepmood.New(deepmood.Config{
		Task:    deepmood.TaskMood,
		Classes: data.NumMoods,
		Hidden:  10,
		Fusion:  deepmood.FusionFC,
		Seed:    41,
	})
	if err != nil {
		return nil, err
	}
	if _, err := model.Train(deepmood.NormalizeAll(train), deepmood.TrainConfig{
		Epochs:    epochs,
		BatchSize: 8,
		Optimizer: opt.NewAdam(0.01),
		Rng:       rng,
	}); err != nil {
		return nil, err
	}

	trainCounts := make(map[int]int)
	for _, s := range train {
		trainCounts[s.UserID]++
	}

	points := make([]Fig5Point, 0, participants)
	testN := deepmood.NormalizeAll(test)
	for u := 0; u < participants; u++ {
		var preds, truth []int
		for _, s := range testN {
			if s.UserID != u {
				continue
			}
			p, err := model.Predict(s)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
			truth = append(truth, s.Mood)
		}
		if len(preds) == 0 {
			continue
		}
		acc, err := metrics.Accuracy(preds, truth)
		if err != nil {
			return nil, err
		}
		points = append(points, Fig5Point{Participant: u, TrainSessions: trainCounts[u], Accuracy: acc})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].TrainSessions < points[j].TrainSessions })
	return points, nil
}

func runFig5(w io.Writer, scale Scale) error {
	points, err := Fig5(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %15s %10s\n", "participant", "train sessions", "accuracy")
	for _, p := range points {
		fmt.Fprintf(w, "%-12d %15d %10s\n", p.Participant, p.TrainSessions, pct(p.Accuracy))
	}
	// Trend summary: mean accuracy of the lower vs upper half by sessions.
	half := len(points) / 2
	var lo, hi float64
	for i, p := range points {
		if i < half {
			lo += p.Accuracy
		} else {
			hi += p.Accuracy
		}
	}
	if half > 0 {
		fmt.Fprintf(w, "\nmean accuracy, fewest-sessions half: %s; most-sessions half: %s\n",
			pct(lo/float64(half)), pct(hi/float64(len(points)-half)))
	}
	fmt.Fprintln(w, "\nPaper (Fig. 5): accuracy rises with contributed sessions; steadily >= 87%")
	fmt.Fprintln(w, "for participants with more than 400 valid typing sessions.")
	return nil
}

// Fig6 prints the multi-view pattern analysis of the most active users.
func runFig6(w io.Writer, scale Scale) error {
	users := 5
	sessions := 30
	if scale == Full {
		sessions = 80
	}
	corpus, err := data.GenerateKeystrokeCorpus(data.KeystrokeConfig{
		NumUsers:        users,
		SessionsPerUser: sessions,
		MoodEffect:      0.3,
		Seed:            601,
	})
	if err != nil {
		return err
	}
	ids := make([]int, users)
	for i := range ids {
		ids[i] = i
	}
	sums := data.SummarizeUserPatterns(corpus.Sessions, ids)

	fmt.Fprintf(w, "%-6s %9s %9s %9s %8s %8s %8s %8s %8s %8s\n",
		"user", "dur(ms)", "gap(ms)", "keys/sess", "backsp", "space", "autocorr", "corrXY", "corrXZ", "corrYZ")
	for _, s := range sums {
		fmt.Fprintf(w, "%-6d %9.1f %9.1f %9.1f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			s.UserID, s.MeanDuration*1000, s.MeanTimeSinceLast*1000, s.MeanKeysPerSess,
			s.SpecialPerSession[data.SpecialBackspace],
			s.SpecialPerSession[data.SpecialSpace],
			s.SpecialPerSession[data.SpecialAutoCorrect],
			s.AccelCorrXY, s.AccelCorrXZ, s.AccelCorrYZ)
	}
	fmt.Fprintln(w, "\nPaper (Fig. 6): each user shows a distinct signature across the alphanumeric,")
	fmt.Fprintln(w, "special-key and accelerometer views (e.g. user3 types faster with more keys;")
	fmt.Fprintln(w, "user4 favors auto-correct over backspace); acceleration separates users well.")
	return nil
}
