package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mobiledl/internal/data"
	"mobiledl/internal/mobile"
	"mobiledl/internal/nn"
	"mobiledl/internal/opt"
	"mobiledl/internal/split"
)

func init() {
	register("placement", "Figs. 2-3 / III: cloud vs local vs split inference cost on WiFi/LTE/offline", runPlacement)
	register("arden", "III-A ([30]): noisy training recovers accuracy under private split inference", runArden)
}

// PlacementRow is one (model, network, placement) cost estimate (E7).
type PlacementRow struct {
	Model     string
	Network   string
	Placement string
	LatencyMs float64
	EnergyMJ  float64 // millijoules
	UpKB      float64
	Feasible  bool
}

// Placement evaluates the three inference placements for a small and a deep
// model across the three connectivity states.
func Placement(Scale) ([]PlacementRow, error) {
	phone := mobile.MidrangePhone()
	cloud := mobile.CloudServer()
	models := []struct {
		name string
		w    mobile.Workload
	}{
		{"small-mlp (2 MMAC)", mobile.Workload{
			TotalMACs: 2e6, LocalMACs: 2e5, ModelBytes: 2 << 20,
			InputBytes: 4 << 10, PayloadBytes: 1 << 10, OutputBytes: 256,
		}},
		{"deep-cnn (5 GMAC)", mobile.Workload{
			TotalMACs: 5e9, LocalMACs: 1e8, ModelBytes: 200 << 20,
			InputBytes: 600 << 10, PayloadBytes: 48 << 10, OutputBytes: 1 << 10,
		}},
	}
	networks := []mobile.Network{mobile.WiFiNetwork(), mobile.LTENetwork(), mobile.OfflineNetwork()}

	var rows []PlacementRow
	for _, m := range models {
		for _, net := range networks {
			for _, plan := range mobile.ComparePlacements(phone, cloud, net, m.w) {
				rows = append(rows, PlacementRow{
					Model:     m.name,
					Network:   net.Kind.String(),
					Placement: plan.Placement.String(),
					LatencyMs: plan.LatencyMs,
					EnergyMJ:  plan.EnergyJ * 1000,
					UpKB:      float64(plan.UpBytes) / 1024,
					Feasible:  plan.Feasible,
				})
			}
		}
	}
	return rows, nil
}

func runPlacement(w io.Writer, scale Scale) error {
	rows, err := Placement(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s %-9s %-10s %12s %12s %10s %9s\n",
		"model", "network", "placement", "latency(ms)", "energy(mJ)", "up(KB)", "feasible")
	for _, r := range rows {
		if !r.Feasible {
			fmt.Fprintf(w, "%-20s %-9s %-10s %12s %12s %10s %9v\n",
				r.Model, r.Network, r.Placement, "-", "-", "-", false)
			continue
		}
		fmt.Fprintf(w, "%-20s %-9s %-10s %12.2f %12.3f %10.1f %9v\n",
			r.Model, r.Network, r.Placement, r.LatencyMs, r.EnergyMJ, r.UpKB, r.Feasible)
	}
	fmt.Fprintln(w, "\nPaper (III, Figs. 2-3): deep models favor cloud/split offloading when")
	fmt.Fprintln(w, "connected (the phone is compute-bound); offline forces local inference;")
	fmt.Fprintln(w, "split inference uploads far less than raw-input cloud inference.")
	return nil
}

// ArdenRow is one perturbation setting of E8.
type ArdenRow struct {
	NullRate   float64
	Sigma      float64
	Epsilon    float64 // per-query DP at delta=1e-5; -1 when sigma=0
	CleanAcc   float64 // cloud net trained on clean representations
	NoisyAcc   float64 // cloud net trained with noisy training
	PayloadCut float64 // payload reduction vs raw input (x smaller)
}

// Arden sweeps the ARDEN perturbation strength and compares clean- vs
// noisy-trained cloud networks under perturbed inference.
func Arden(scale Scale) ([]ArdenRow, error) {
	samples := 600
	epochs := 20
	evalReps := 3
	if scale == Full {
		samples = 1200
		epochs = 35
		evalReps = 7
	}
	fb, err := data.GenerateFedBench(data.FedBenchConfig{Samples: samples, Classes: 3, Dim: 12, Seed: 1100})
	if err != nil {
		return nil, err
	}
	trX, trY, teX, teY, err := fb.Split(0.8)
	if err != nil {
		return nil, err
	}

	build := func(nullRate, sigma float64) (*split.Pipeline, error) {
		lr := rand.New(rand.NewSource(51))
		local := nn.NewSequential(nn.NewDense(lr, 12, 6), nn.NewTanh())
		cr := rand.New(rand.NewSource(52))
		cloudNet := nn.NewSequential(nn.NewDense(cr, 6, 20), nn.NewReLU(), nn.NewDense(cr, 20, 3))
		return split.New(split.Config{
			Local: local, Cloud: cloudNet,
			NullRate: nullRate, NoiseSigma: sigma, Bound: 2.0,
		})
	}

	evalPerturbed := func(p *split.Pipeline) (float64, error) {
		var total float64
		for i := 0; i < evalReps; i++ {
			acc, err := p.Accuracy(rand.New(rand.NewSource(int64(900+i))), teX, teY)
			if err != nil {
				return 0, err
			}
			total += acc
		}
		return total / float64(evalReps), nil
	}

	settings := []struct{ null, sigma float64 }{
		{0, 0},
		{0.1, 0.3},
		{0.25, 0.6},
		{0.4, 1.0},
	}
	var rows []ArdenRow
	for _, s := range settings {
		row := ArdenRow{NullRate: s.null, Sigma: s.sigma, Epsilon: -1}
		for _, noisy := range []bool{false, true} {
			p, err := build(s.null, s.sigma)
			if err != nil {
				return nil, err
			}
			frac := 0.0
			if noisy {
				frac = 2
			}
			if _, err := p.TrainCloud(trX, trY, 3, split.TrainConfig{
				Epochs:        epochs,
				BatchSize:     32,
				Optimizer:     opt.NewAdam(0.01),
				Rng:           rand.New(rand.NewSource(77)),
				NoisyFraction: frac,
			}); err != nil {
				return nil, err
			}
			acc, err := evalPerturbed(p)
			if err != nil {
				return nil, err
			}
			if noisy {
				row.NoisyAcc = acc
			} else {
				row.CleanAcc = acc
			}
			if s.sigma > 0 {
				eps, err := p.Epsilon(1e-5)
				if err != nil {
					return nil, err
				}
				row.Epsilon = eps
			}
			raw, transformed := p.PayloadBytes(12)
			row.PayloadCut = float64(raw) / float64(transformed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runArden(w io.Writer, scale Scale) error {
	rows, err := Arden(scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-8s %10s %14s %14s %12s\n",
		"nullrate", "sigma", "epsilon", "clean-trained", "noisy-trained", "payload cut")
	for _, r := range rows {
		eps := "-"
		if r.Epsilon >= 0 {
			eps = fmt.Sprintf("%.2f", r.Epsilon)
		}
		fmt.Fprintf(w, "%-10.2f %-8.2f %10s %14s %14s %11.1fx\n",
			r.NullRate, r.Sigma, eps, pct(r.CleanAcc), pct(r.NoisyAcc), r.PayloadCut)
	}
	fmt.Fprintln(w, "\nPaper (III-A, [30]): perturbation degrades a conventionally trained cloud")
	fmt.Fprintln(w, "model; noisy training recovers most of the loss while the transmitted")
	fmt.Fprintln(w, "representation stays smaller than the raw input and carries a DP guarantee.")
	return nil
}
