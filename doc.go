// Package mobiledl is a from-scratch Go reproduction of "Deep Learning
// Towards Mobile Applications" (Wang, Cao, Yu, Sun, Bao, Zhu — ICDCS 2018):
// federated and privacy-preserving training on mobile data, efficient
// on-device inference (split execution and model compression), and the two
// reference applications DeepMood and DEEPSERVICE.
//
// See README.md for the feature overview and ARCHITECTURE.md for the layer
// map, the train -> publish -> serve data-flow diagram, and the guide to
// adding a serving backend or client trainer. The root-level bench_test.go
// regenerates every paper table and figure as a testing.B benchmark;
// cmd/paperbench prints them.
//
// # Serving runtime
//
// internal/serve turns the algorithmic pieces into a concurrent
// model-serving system built around one seam, the Backend interface
// (Describe, InputDim, RunBatch, Params, Close). Three implementations
// ship: DenseBackend (any nn.Sequential, including Deep-Compressed output,
// placed local or cloud by the internal/mobile cost model), CascadeBackend
// (split/early-exit cascades from internal/split — confident rows answer at
// the on-device exit, the rest are perturbed and finished cloud-side over
// the simulated uplink), and BaselineBackend (any fitted internal/baselines
// classifier behind the same batcher). Adding a model family to the serving
// system means implementing Backend and nothing else.
//
// Around the seam, the flow is registry -> batcher -> backend:
//
//   - Registry names, versions, and hot-swaps backends. Weights travel as
//     nn.SaveWeights blobs into Param-bearing backends — Register an
//     architecture factory and Load blobs into it (LoadCompressed routes
//     them through the internal/compress Deep Compression pipeline first),
//     or Install an in-process backend directly (the only path for
//     parameter-less baselines). Reads are lock-free; swaps take effect at
//     the next batch boundary, and a bounded version history keeps recently
//     replaced versions resolvable for version-pinned requests.
//   - Batcher coalesces single-row requests into tensor batches under a
//     latency budget: a batch flushes when it reaches MaxBatch rows or
//     MaxDelay after its first request, whichever comes first, and a worker
//     pool sized to GOMAXPROCS executes flushed batches. Rows whose
//     RequestOptions differ are split into uniform sub-batches at flush
//     time, so a backend always sees one options set per call.
//   - Executor resolves the requested (current or pinned) version and runs
//     the batch through that version's Backend under a shared ExecEnv
//     (device/cloud/network cost model plus the serialized perturbation
//     RNG).
//
// Per-request options thread end to end from the HTTP body to RunBatch:
// top_k (class-probability breakdown), version (registry pin), no_perturb
// (skip the cascade's DP perturbation while still billing the uplink).
//
// Runtime wires the three together for one model and Server exposes any
// number of runtimes over HTTP/JSON (POST /v1/predict, GET /v1/stats with
// p50/p99 latency, throughput and batch occupancy via internal/metrics,
// GET /v1/models). cmd/mobiledlserve is the standalone server binary;
// examples/serving is the in-process quickstart serving all three backend
// kinds; BenchmarkServeThroughput in bench_test.go measures requests/sec at
// max batch sizes 1/8/32.
//
// # Train-to-serve loop
//
// internal/fedserve closes the loop between training and serving: a
// Coordinator runs federated rounds continuously — device eligibility via
// federated.Scheduler, parallel client fan-out through the
// federated.Trainer seam, staleness-bounded async merging, optional DP
// aggregation from internal/privacy — and hot-publishes every accepted
// global model into the serve.Registry with round/accuracy provenance, so
// predict traffic migrates to better models mid-flight. The /v1/train
// control plane (start, pause, status) mounts next to the serving API in
// cmd/mobiledlserve via -train; examples/trainserve is the in-process
// demo. See ARCHITECTURE.md for the full data-flow diagram.
//
// # Performance conventions
//
// internal/tensor is the substrate every hot path rides, and it follows
// three rules the rest of the repository is written against:
//
//   - Destination passing: each hot operation has an *Into variant
//     (MatMulInto, AddInto, SoftmaxInto, ..., plus accumulate fusions like
//     MatMulAccInto) that writes into a caller-supplied, correctly-shaped
//     matrix and allocates nothing. Allocating forms remain for cold sites.
//   - Pooling: tensor.Pool / the shared tensor.Get and tensor.Put recycle
//     matrix storage by capacity class. Scratch obtained from Get is owned
//     until Put and never used afterwards; results returned across an API
//     boundary are freshly allocated, never pooled, so callers own them
//     unconditionally. Views (Reshape, RowMatrix) must not be Put.
//   - Threshold-gated parallelism: the matmul kernels split row blocks
//     across GOMAXPROCS goroutines only above 2^20 multiply-accumulates;
//     mobile-scale shapes stay sequential on a register-tiled kernel.
//
// Consumers follow suit: nn.Dense fuses bias into the matmul destination;
// nn.GRU reuses its per-step activation cache across calls (making a GRU
// instance single-goroutine, unlike Dense inference which is stateless and
// concurrency-safe); the serve batcher and executor pool batch and gather
// buffers per worker. When adding a hot path, compute into pooled scratch,
// Put it before returning, and return only fresh matrices. `make
// bench-json` snapshots the benchmark suite to BENCH_<date>.json so perf
// changes stay visible in review.
package mobiledl
