// Package mobiledl is a from-scratch Go reproduction of "Deep Learning
// Towards Mobile Applications" (Wang, Cao, Yu, Sun, Bao, Zhu — ICDCS 2018):
// federated and privacy-preserving training on mobile data, efficient
// on-device inference (split execution and model compression), and the two
// reference applications DeepMood and DEEPSERVICE.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-
// measured results. The root-level bench_test.go regenerates every table
// and figure as a testing.B benchmark; cmd/paperbench prints them.
package mobiledl
